// Fault-tolerance layer: the injector itself, backoff bounds, deadlines,
// cancellation, retry + degraded fallback, executor-failure inline
// dispatch, the shutdown-vs-blocked-submitter ordering, and the soak test
// that proves the service invariant: every submitted future resolves —
// with a value or a typed exception — under any injected failure mix.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "data/quant.hpp"
#include "lossy/lossy.hpp"
#include "obs/metrics.hpp"
#include "svc/deadline.hpp"
#include "svc/service.hpp"
#include "util/backoff.hpp"
#include "util/clock.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

using svc::CancelledError;
using svc::CompressionService;
using svc::Deadline;
using svc::DeadlineExceeded;
using svc::Priority;
using svc::ServiceConfig;
using svc::SubmitOptions;
using util::Clock;
using util::FaultInjector;
using util::InjectedFault;
using util::ScopedFaults;
using util::TransientError;
using util::VirtualClock;

PipelineConfig serial_config(std::size_t nbins = 256) {
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

std::vector<u8> ramp_data(std::size_t n, u64 seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

/// Fast-retry policy so fault-heavy tests don't sleep through real
/// backoff schedules.
svc::RetryPolicy fast_retry() {
  svc::RetryPolicy r;
  r.max_attempts = 2;
  r.backoff.initial_seconds = 20e-6;
  r.backoff.max_seconds = 200e-6;
  return r;
}

// --- FaultInjector. ----------------------------------------------------------

TEST(FaultInjector, CertainProbabilityAlwaysFires) {
  FaultInjector inj;
  inj.seed(1);
  inj.arm("stage.x", 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inj.should_fail("stage.x"));
  EXPECT_THROW(inj.maybe_throw("stage.x"), InjectedFault);
  const auto st = inj.stats("stage.x");
  EXPECT_EQ(st.evaluations, 101u);
  EXPECT_EQ(st.fired, 101u);
}

TEST(FaultInjector, ZeroProbabilityAndUnknownSitesNeverFire) {
  FaultInjector inj;
  inj.arm("stage.x", 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_fail("stage.x"));
    EXPECT_FALSE(inj.should_fail("never.armed"));
  }
  EXPECT_NO_THROW(inj.maybe_throw("stage.x"));
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.total_fired(), 0u);
}

TEST(FaultInjector, DisarmStopsFiring) {
  FaultInjector inj;
  inj.arm("stage.x", 1.0);
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fail("stage.x"));
  inj.disarm("stage.x");
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.should_fail("stage.x"));
}

TEST(FaultInjector, ProbabilityIsApproximatelyHonored) {
  FaultInjector inj;
  inj.seed(42);
  inj.arm("stage.x", 0.3);
  int fired = 0;
  for (int i = 0; i < 4000; ++i) fired += inj.should_fail("stage.x") ? 1 : 0;
  EXPECT_GT(fired, 4000 * 0.2);
  EXPECT_LT(fired, 4000 * 0.4);
}

TEST(FaultInjector, SpecParsingArmsSitesAndSkipsMalformedEntries) {
  FaultInjector inj;
  EXPECT_EQ(inj.arm_from_spec("svc.encode=1.0,svc.cache.find=0.5"), 2u);
  EXPECT_TRUE(inj.should_fail("svc.encode"));
  // Malformed entries are skipped, valid ones still land.
  FaultInjector inj2;
  EXPECT_EQ(inj2.arm_from_spec("=0.5,noequals,x=abc,good=1"), 1u);
  EXPECT_TRUE(inj2.should_fail("good"));
  EXPECT_FALSE(inj2.should_fail("x"));
  // Empty spec arms nothing.
  FaultInjector inj3;
  EXPECT_EQ(inj3.arm_from_spec(""), 0u);
}

TEST(FaultInjector, ScopedFaultsDisarmsOnExit) {
  FaultInjector inj;
  {
    ScopedFaults scope(inj);
    scope.arm("stage.x", 1.0).arm("stage.y", 1.0);
    EXPECT_TRUE(inj.should_fail("stage.x"));
  }
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.should_fail("stage.x"));
  EXPECT_FALSE(inj.should_fail("stage.y"));
}

TEST(FaultInjector, InjectedFaultIsTransient) {
  // The retry classifier keys on TransientError; injected faults must be
  // retryable by construction.
  try {
    throw InjectedFault("stage.x");
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("stage.x"), std::string::npos);
  }
}

// --- Backoff. ----------------------------------------------------------------

TEST(Backoff, DelayGrowsAndIsCappedAndJittered) {
  util::BackoffPolicy p;
  p.initial_seconds = 1e-3;
  p.multiplier = 2.0;
  p.max_seconds = 8e-3;
  p.jitter = 0.5;
  Xoshiro256 rng(9);
  for (int attempt = 0; attempt < 10; ++attempt) {
    double base = p.initial_seconds;
    for (int i = 0; i < attempt; ++i) base *= p.multiplier;
    if (base > p.max_seconds) base = p.max_seconds;
    for (int rep = 0; rep < 20; ++rep) {
      const double d = util::backoff_delay_seconds(p, attempt, rng);
      EXPECT_GE(d, base * (1.0 - p.jitter));
      EXPECT_LE(d, base);
    }
  }
}

TEST(Backoff, ZeroJitterIsDeterministic) {
  util::BackoffPolicy p;
  p.initial_seconds = 1e-3;
  p.multiplier = 4.0;
  p.max_seconds = 1.0;
  p.jitter = 0.0;
  Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(util::backoff_delay_seconds(p, 0, rng), 1e-3);
  EXPECT_DOUBLE_EQ(util::backoff_delay_seconds(p, 1, rng), 4e-3);
  EXPECT_DOUBLE_EQ(util::backoff_delay_seconds(p, 2, rng), 16e-3);
}

// --- Deadline / handle state machine. ---------------------------------------

TEST(Deadline, ExpiryArithmetic) {
  EXPECT_TRUE(Deadline::none().unlimited());
  EXPECT_FALSE(Deadline::none().expired());
  EXPECT_TRUE(Deadline::in(-1.0).expired());
  EXPECT_TRUE(Deadline::in(0.0).expired());
  EXPECT_FALSE(Deadline::in(3600.0).expired());
  const auto tp = Deadline::clock::now() + std::chrono::hours(1);
  EXPECT_FALSE(Deadline::at_time(tp).expired());
}

TEST(Deadline, HandleStateExactlyOneTransitionWins) {
  svc::detail::HandleState st;
  EXPECT_TRUE(st.try_transition(svc::detail::ReqPhase::kPending,
                                svc::detail::ReqPhase::kDispatched));
  // Cancel lost the race — and every later claim fails too.
  EXPECT_FALSE(st.try_transition(svc::detail::ReqPhase::kPending,
                                 svc::detail::ReqPhase::kCancelled));
  EXPECT_FALSE(st.try_transition(svc::detail::ReqPhase::kPending,
                                 svc::detail::ReqPhase::kResolved));
  EXPECT_EQ(st.load(), svc::detail::ReqPhase::kDispatched);
}

// --- Pipeline cancellation hooks. --------------------------------------------

TEST(CancelToken, RequestedTokenAbortsCompressBetweenStages) {
  CancelToken tok;
  const auto data = ramp_data(4096);
  EXPECT_NO_THROW(
      (void)compress<u8>(data, serial_config(), nullptr, &tok));
  tok.request();
  EXPECT_THROW((void)compress<u8>(data, serial_config(), nullptr, &tok),
               OperationCancelled);
}

// --- Service: deadlines. -----------------------------------------------------

TEST(ServiceFault, ExpiredDeadlineAtSubmitFailsFastWithoutAdmission) {
  ServiceConfig sc;
  sc.workers = 2;
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(1000);
  SubmitOptions opts;
  opts.deadline = Deadline::in(-1.0);
  auto sub = svc.submit(std::span<const u8>(data), serial_config(), opts);
  EXPECT_THROW(sub.result.get(), DeadlineExceeded);
  // Never admitted: the handle can't be cancelled after the fact either.
  EXPECT_FALSE(sub.handle.cancel());
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(ServiceFault, PendingRequestPastDeadlineFailsWithDeadlineExceeded) {
  // A leader with config A holds the scheduler in its batch window; a
  // config-B request with a tiny deadline expires while pending and must
  // be pruned, not dispatched. All on the virtual clock: the batch window
  // and the deadline tick by query activity, not by real sleeping.
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(2e-3));
  ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 0.2;
  sc.clock = &vc;
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(2000);
  auto leader =
      svc.submit(std::span<const u8>(data), serial_config(256)).share();
  SubmitOptions opts;
  opts.deadline = Deadline::in(5e-3, vc);
  auto doomed =
      svc.submit(std::span<const u8>(data), serial_config(128), opts);
  EXPECT_THROW(doomed.result.get(), DeadlineExceeded);
  EXPECT_NO_THROW((void)leader.get());
  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);
}

// --- Service: cancellation. --------------------------------------------------

TEST(ServiceFault, CancelWinsWhilePendingAndFailsTheFuture) {
  // Same structure: the config-B request stays pending during the leader's
  // batch window, so cancel() beats dispatch deterministically. The window
  // is virtual-clock time — it cannot close before cancel() runs.
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(2e-3));
  ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 0.2;
  sc.clock = &vc;
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(2000);
  auto leader =
      svc.submit(std::span<const u8>(data), serial_config(256)).share();
  auto sub = svc.submit(std::span<const u8>(data), serial_config(128),
                        SubmitOptions{});
  EXPECT_TRUE(sub.handle.cancel());
  EXPECT_TRUE(sub.handle.cancelled());
  EXPECT_FALSE(sub.handle.cancel());  // second cancel is a no-op
  EXPECT_THROW(sub.result.get(), CancelledError);
  EXPECT_NO_THROW((void)leader.get());
  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(ServiceFault, CancelAfterCompletionIsRefused) {
  CompressionService<u8> svc;
  const auto data = ramp_data(2000);
  auto sub = svc.submit(std::span<const u8>(data), serial_config(),
                        SubmitOptions{});
  const auto res = sub.result.get();
  EXPECT_FALSE(sub.handle.cancel());
  EXPECT_EQ(svc::decompress(res), data);
}

// --- Service: retry and degraded fallback. -----------------------------------

TEST(ServiceFault, CodebookFaultsDegradeToSerialPathAndRoundTrip) {
  ScopedFaults scope(FaultInjector::global());
  scope.arm("svc.codebook", 1.0);  // every batched build attempt fails
  auto& reg = obs::MetricsRegistry::global();
  const u64 retries0 = reg.counter("svc.retries");
  const u64 degraded0 = reg.counter("svc.degraded");

  ServiceConfig sc;
  sc.workers = 2;
  sc.retry = fast_retry();
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(4000);
  const auto res =
      svc.submit(std::span<const u8>(data), serial_config()).get();
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(svc::decompress(res), data);
  EXPECT_GT(reg.counter("svc.retries"), retries0);
  EXPECT_GT(reg.counter("svc.degraded"), degraded0);
}

TEST(ServiceFault, DegradedRescueCannotOvershootExpiredDeadline) {
  // Regression: the batched encode burns the whole retry budget (each
  // backoff sleep advancing the virtual clock), so by the time the
  // degraded fallback is reached the request's deadline has passed. The
  // rescue must fail the future with DeadlineExceeded instead of spending
  // solo-pipeline work on — and then returning — a result the caller's
  // budget already disowned.
  ScopedFaults scope(FaultInjector::global());
  scope.arm("svc.encode", 1.0);
  auto& reg = obs::MetricsRegistry::global();
  const u64 degraded0 = reg.counter("svc.degraded");
  const u64 completed0 = reg.counter("svc.requests_completed");
  const u64 expired0 = reg.counter("svc.deadline_exceeded");

  VirtualClock vc;
  ServiceConfig sc;
  sc.workers = 1;
  sc.batch_max_requests = 1;
  sc.clock = &vc;
  sc.retry.max_attempts = 1;
  sc.retry.backoff.initial_seconds = 1.0;  // virtual: one sleep = 1 s
  sc.retry.backoff.max_seconds = 1.0;
  sc.retry.backoff.jitter = 0.0;
  CompressionService<u8> svc(sc);

  const auto data = ramp_data(4000);
  SubmitOptions opts;
  opts.deadline = Deadline::in(0.5, vc);  // expires inside the first backoff
  auto sub = svc.submit(std::span<const u8>(data), serial_config(), opts);
  EXPECT_THROW(sub.result.get(), DeadlineExceeded);
  svc.drain();
  EXPECT_GE(reg.counter("svc.degraded"), degraded0 + 1);  // fallback reached
  EXPECT_EQ(reg.counter("svc.requests_completed"), completed0);  // no rescue
  EXPECT_GE(reg.counter("svc.deadline_exceeded"), expired0 + 1);
}

TEST(ServiceFault, EncodeFaultsWithFallbackDisabledFailTheFuture) {
  ScopedFaults scope(FaultInjector::global());
  scope.arm("svc.encode", 1.0);
  auto& reg = obs::MetricsRegistry::global();
  const u64 failed0 = reg.counter("svc.requests_failed");

  ServiceConfig sc;
  sc.workers = 2;
  sc.retry = fast_retry();
  sc.degraded_fallback = false;
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(4000);
  auto fut = svc.submit(std::span<const u8>(data), serial_config());
  EXPECT_THROW((void)fut.get(), InjectedFault);
  EXPECT_EQ(reg.counter("svc.requests_failed"), failed0 + 1);
}

TEST(ServiceFault, TransientEncodeFaultIsRetriedToSuccess) {
  // p = 0.5 across attempts: with 2 retries per request the chance all
  // requests exhaust their budget is negligible; most succeed on the
  // batched path (not degraded).
  ScopedFaults scope(FaultInjector::global());
  FaultInjector::global().seed(1234);
  scope.arm("svc.encode", 0.5);

  ServiceConfig sc;
  sc.workers = 2;
  sc.retry = fast_retry();
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(3000);
  int batched = 0;
  for (int i = 0; i < 16; ++i) {
    const auto res =
        svc.submit(std::span<const u8>(data), serial_config()).get();
    EXPECT_EQ(svc::decompress(res), data);
    batched += res.degraded ? 0 : 1;
  }
  EXPECT_GT(batched, 0);
}

TEST(ServiceFault, CacheFaultsAreSurvivable) {
  ScopedFaults scope(FaultInjector::global());
  scope.arm("svc.cache.find", 1.0).arm("svc.cache.insert", 1.0);

  ServiceConfig sc;
  sc.workers = 2;
  sc.retry = fast_retry();
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(4000);
  const auto res =
      svc.submit(std::span<const u8>(data), serial_config()).get();
  EXPECT_EQ(svc::decompress(res), data);
}

TEST(ServiceFault, CacheInsertFailureDropsWriteAndStaysOnBatchedPath) {
  // Insert-failure policy: losing the cache write must cost nothing but
  // the write — the request completes on the batched path with the
  // freshly built codebook (degraded == false), consuming no retries.
  ScopedFaults scope(FaultInjector::global());
  scope.arm("svc.cache.insert", 1.0);
  auto& reg = obs::MetricsRegistry::global();
  const u64 dropped0 = reg.counter("svc.cache_insert_dropped");
  const u64 retries0 = reg.counter("svc.retries");

  ServiceConfig sc;
  sc.workers = 2;
  sc.retry = fast_retry();
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(4000);
  const auto res =
      svc.submit(std::span<const u8>(data), serial_config()).get();
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(svc::decompress(res), data);
  EXPECT_GT(reg.counter("svc.cache_insert_dropped"), dropped0);
  EXPECT_EQ(reg.counter("svc.retries"), retries0);
}

// --- Streaming layer fault sites. --------------------------------------------

TEST(StreamingFault, ObserveFaultLeavesProfileRetryable) {
  ScopedFaults scope(FaultInjector::global());
  scope.arm("streaming.observe", 1.0);
  StreamingCompressor<u8> comp(serial_config());
  const auto seg = ramp_data(4000);
  EXPECT_THROW(comp.observe(std::span<const u8>(seg)), InjectedFault);
  // The site fires before freq_ is touched: the same observe() succeeds
  // once the fault clears, with nothing double-counted.
  FaultInjector::global().disarm("streaming.observe");
  EXPECT_NO_THROW(comp.observe(std::span<const u8>(seg)));
  comp.freeze();
  StreamingDecompressor<u8> dec(comp.header());
  EXPECT_EQ(dec.decode_segment(comp.encode_segment(std::span<const u8>(seg))),
            seg);
}

TEST(StreamingFault, FreezeFaultThenResetRecovers) {
  ScopedFaults scope(FaultInjector::global());
  StreamingCompressor<u8> comp(serial_config());
  const auto seg = ramp_data(4000);
  comp.observe(std::span<const u8>(seg));
  FaultInjector::global().arm("streaming.freeze", 1.0);
  EXPECT_THROW(comp.freeze(), InjectedFault);
  // The failed freeze left the compressor un-frozen...
  EXPECT_THROW((void)comp.codebook(), std::logic_error);
  FaultInjector::global().disarm("streaming.freeze");
  // ...and reset() returns it to a clean slate mid-stream: re-observe,
  // re-freeze, and the stream round-trips.
  comp.reset();
  comp.observe(std::span<const u8>(seg));
  EXPECT_NO_THROW(comp.freeze());
  StreamingDecompressor<u8> dec(comp.header());
  EXPECT_EQ(dec.decode_segment(comp.encode_segment(std::span<const u8>(seg))),
            seg);
}

TEST(StreamingFault, EncodeSegmentFaultLosesOnlyThatFrame) {
  ScopedFaults scope(FaultInjector::global());
  StreamingCompressor<u8> comp(serial_config());
  const auto seg = ramp_data(4000);
  comp.observe(std::span<const u8>(seg));
  comp.freeze();
  FaultInjector::global().arm("streaming.encode_segment", 1.0);
  EXPECT_THROW((void)comp.encode_segment(std::span<const u8>(seg)),
               InjectedFault);
  // Codebook and header survive; the caller just re-encodes the segment.
  FaultInjector::global().disarm("streaming.encode_segment");
  StreamingDecompressor<u8> dec(comp.header());
  EXPECT_EQ(dec.decode_segment(comp.encode_segment(std::span<const u8>(seg))),
            seg);
}

// --- Lossy layer fault sites. ------------------------------------------------

TEST(LossyFault, QuantizeAndEncodeSitesFireAndAreRecoverable) {
  ScopedFaults scope(FaultInjector::global());
  const data::Dims dims{16, 16, 16};
  const auto field = data::generate_cosmo_field(dims, 11);
  lossy::Config cfg;
  cfg.rel_error_bound = 1e-3;

  FaultInjector::global().arm("lossy.quantize", 1.0);
  EXPECT_THROW((void)lossy::compress_field(field, dims, cfg), InjectedFault);
  FaultInjector::global().disarm("lossy.quantize");
  FaultInjector::global().arm("lossy.encode", 1.0);
  EXPECT_THROW((void)lossy::compress_field(field, dims, cfg), InjectedFault);
  FaultInjector::global().disarm("lossy.encode");

  // Both sites cleared: the same inputs compress and honor the bound.
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
  const auto back = lossy::decompress_field(bytes);
  ASSERT_EQ(back.values.size(), field.size());
  double worst = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(field[i]) -
                                     static_cast<double>(back.values[i])));
  }
  EXPECT_LE(worst, rep.error_bound * 1.0001);
}

// --- Service: executor faults → inline dispatch. -----------------------------

TEST(ServiceFault, ExecutorFaultsFallBackToInlineDispatch) {
  ScopedFaults scope(FaultInjector::global());
  scope.arm("executor.submit", 1.0);
  auto& reg = obs::MetricsRegistry::global();
  const u64 inline0 = reg.counter("svc.inline_dispatches");

  ServiceConfig sc;
  sc.workers = 2;
  sc.retry = fast_retry();
  CompressionService<u8> svc(sc);
  const auto data = ramp_data(4000);
  const auto res =
      svc.submit(std::span<const u8>(data), serial_config()).get();
  EXPECT_EQ(svc::decompress(res), data);
  EXPECT_GT(reg.counter("svc.inline_dispatches"), inline0);
}

// --- Soak: every future resolves under a mixed fault storm. ------------------

TEST(ServiceFault, SoakEveryFutureResolvesUnderFaultStorm) {
  ScopedFaults scope(FaultInjector::global());
  FaultInjector::global().seed(2026);
  scope.arm("svc.histogram", 0.05)
      .arm("svc.codebook", 0.1)
      .arm("svc.encode", 0.1)
      .arm("svc.cache.find", 0.05)
      .arm("svc.cache.insert", 0.05)
      .arm("executor.submit", 0.05);

  auto& reg = obs::MetricsRegistry::global();
  const u64 submitted0 = reg.counter("svc.requests_submitted");
  const u64 completed0 = reg.counter("svc.requests_completed");
  const u64 failed0 = reg.counter("svc.requests_failed");
  const u64 deadline0 = reg.counter("svc.deadline_exceeded");
  const u64 cancelled0 = reg.counter("svc.cancelled_requests");
  const u64 fired0 = FaultInjector::global().total_fired();

  // Virtual clock with activity-driven advance: every clock query (poll
  // points, window sweeps, deadline checks) moves time 20 µs, and backoff
  // sleeps advance instead of blocking — the storm's deadline/retry
  // machinery runs at full logical coverage with no real sleeping.
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(20e-6));
  ServiceConfig sc;
  sc.workers = 4;
  sc.queue_capacity = 64;
  sc.retry = fast_retry();
  sc.batch_window_seconds = 100e-6;
  sc.clock = &vc;
  CompressionService<u8> svc(sc);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::atomic<int> ok{0}, deadline{0}, cancelled{0}, other{0};
  std::atomic<int> bad_roundtrip{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(1000 + static_cast<u64>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const auto data = ramp_data(200 + rng.below(3000), rng.below(1u << 30));
        SubmitOptions opts;
        const u64 prio = rng.below(3);
        opts.priority = prio == 0   ? Priority::kLow
                        : prio == 1 ? Priority::kNormal
                                    : Priority::kHigh;
        const u64 dl = rng.below(10);
        if (dl < 2) {
          opts.deadline =
              Deadline::in(50e-6 * static_cast<double>(1 + dl), vc);
        } else if (dl < 4) {
          opts.deadline = Deadline::in(5.0, vc);
        }  // else: no deadline
        auto sub = svc.submit(std::span<const u8>(data),
                              serial_config(rng.below(2) ? 256 : 128), opts);
        if (rng.below(10) == 0) (void)sub.handle.cancel();
        try {
          const auto res = sub.result.get();
          ok.fetch_add(1);
          if (svc::decompress(res) != data) bad_roundtrip.fetch_add(1);
        } catch (const DeadlineExceeded&) {
          deadline.fetch_add(1);
        } catch (const CancelledError&) {
          cancelled.fetch_add(1);
        } catch (...) {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // The invariant: every future resolved, and only with the sanctioned
  // outcomes — success (round-tripping), DeadlineExceeded, or
  // CancelledError. Anything else means a fault leaked past the
  // retry/degrade net.
  EXPECT_EQ(ok.load() + deadline.load() + cancelled.load() + other.load(),
            kThreads * kPerThread);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(bad_roundtrip.load(), 0);
  EXPECT_GT(ok.load(), 0);

  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);

  // Counter balance: submitted == completed + failed + expired + cancelled.
  const u64 submitted = reg.counter("svc.requests_submitted") - submitted0;
  const u64 completed = reg.counter("svc.requests_completed") - completed0;
  const u64 failed = reg.counter("svc.requests_failed") - failed0;
  const u64 expired = reg.counter("svc.deadline_exceeded") - deadline0;
  const u64 cancels = reg.counter("svc.cancelled_requests") - cancelled0;
  EXPECT_EQ(submitted, static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(submitted, completed + failed + expired + cancels);

  // The storm actually stormed.
  EXPECT_GT(FaultInjector::global().total_fired(), fired0);
}

}  // namespace
}  // namespace parhuff
