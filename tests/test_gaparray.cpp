// Gap-array decoder (Rivera et al.) and the container-format evolution it
// rides on: bit-exactness against the sequential decoder across encoders,
// overflow fallback, PHF3 optional-field round-trips, backward/forward
// compatibility (golden PHF2 containers, unknown-tag skip), forged
// metadata rejection, tier selection in decode_auto, and mid-decode
// cancellation. Suite names carry "Decode" so the CI sanitizer and
// repeat-until-fail jobs pick them up.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "core/decode.hpp"
#include "core/decode_gaparray.hpp"
#include "core/decode_selfsync.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/format.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "core/tree.hpp"
#include "data/datasets.hpp"
#include "data/synth_hist.hpp"
#include "data/textgen.hpp"
#include "data/quant.hpp"
#include "obs/metrics.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport_inmem.hpp"
#include "svc/service.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "golden_phf2.hpp"

namespace parhuff {
namespace {

using util::Clock;
using util::VirtualClock;

template <typename Sym>
std::vector<u64> hist_of(const std::vector<Sym>& v, std::size_t nbins) {
  std::vector<u64> h(nbins, 0);
  for (Sym s : v) ++h[static_cast<std::size_t>(s)];
  return h;
}

std::span<const u8> bytes_of(const unsigned char* p, std::size_t n) {
  return std::span<const u8>(reinterpret_cast<const u8*>(p), n);
}

// --- Kernel round-trips. -----------------------------------------------------

TEST(GapDecode, MatchesSequentialOnText) {
  const auto input = data::generate_text(400000, 1);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  auto enc = encode_serial<u8>(input, cb, 4096);
  annotate_gaps(enc, cb);
  GapArrayStats st;
  EXPECT_EQ(decode_gaparray<u8>(enc, cb, nullptr, &st), input);
  EXPECT_GT(st.subsequences, 0u);
  EXPECT_EQ(st.fallback_chunks, 0u);
}

TEST(GapDecode, LowEntropyQuantCodes) {
  const auto input = data::generate_nyx_quant(500000, 3);
  const Codebook cb = build_codebook_serial(hist_of(input, 1024));
  auto enc = encode_serial<u16>(input, cb, 4096);
  annotate_gaps(enc, cb);
  EXPECT_EQ(decode_gaparray<u16>(enc, cb), input);
}

TEST(GapDecode, ReduceShuffleStreamWithoutBreaking) {
  const auto input = data::generate_nyx_quant(300000, 5);
  const Codebook cb = build_codebook_serial(hist_of(input, 1024));
  auto enc = encode_reduceshuffle_simt<u16>(input, cb,
                                            ReduceShuffleConfig{10, 3},
                                            nullptr, nullptr);
  ASSERT_TRUE(enc.overflow.empty());
  annotate_gaps(enc, cb);
  GapArrayStats st;
  EXPECT_EQ(decode_gaparray<u16>(enc, cb, nullptr, &st), input);
  EXPECT_EQ(st.fallback_chunks, 0u);
}

TEST(GapDecode, FallsBackOnOverflowChunks) {
  const auto input = data::generate_nyx_quant(200000, 7);
  const Codebook cb = build_codebook_serial(hist_of(input, 1024));
  ReduceShuffleStats est;
  auto enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, 6}, nullptr, &est);
  ASSERT_GT(est.breaking_groups, 0u);
  annotate_gaps(enc, cb);
  GapArrayStats st;
  EXPECT_EQ(decode_gaparray<u16>(enc, cb, nullptr, &st), input);
  EXPECT_GT(st.fallback_chunks, 0u);
}

class GapDecodeSubseq : public ::testing::TestWithParam<u32> {};

TEST_P(GapDecodeSubseq, AllSubsequenceSizes) {
  const auto input = data::generate_text(200000, 9);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  auto enc = encode_serial<u8>(input, cb, 2048);
  annotate_gaps(enc, cb, GetParam());
  EXPECT_EQ(decode_gaparray<u8>(enc, cb), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GapDecodeSubseq,
                         ::testing::Values(64u, 128u, 1024u, 4096u, 32768u));

TEST(GapDecode, AnnotationIsIdempotent) {
  const auto input = data::generate_text(50000, 13);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  auto enc = encode_serial<u8>(input, cb, 1024);
  annotate_gaps(enc, cb, 512);
  const auto gaps = enc.gaps;
  const auto counts = enc.gap_counts;
  annotate_gaps(enc, cb, 512);
  EXPECT_EQ(enc.gaps, gaps);
  EXPECT_EQ(enc.gap_counts, counts);
  // Re-annotating at another granularity replaces, not appends.
  annotate_gaps(enc, cb, 2048);
  EXPECT_EQ(enc.gap_subseq_bits, 2048u);
  EXPECT_LT(enc.gaps.size(), gaps.size());
  EXPECT_EQ(decode_gaparray<u8>(enc, cb), input);
}

TEST(GapDecode, RejectsStreamsWithoutMetadata) {
  const auto input = data::generate_text(10000, 15);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  const auto enc = encode_serial<u8>(input, cb, 1024);
  EXPECT_THROW((void)decode_gaparray<u8>(enc, cb), std::invalid_argument);
}

TEST(GapDecode, RejectsBadSubsequenceSizes) {
  const auto input = data::generate_text(10000, 17);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  auto enc = encode_serial<u8>(input, cb, 1024);
  EXPECT_THROW(annotate_gaps(enc, cb, 16), std::invalid_argument);
  EXPECT_THROW(annotate_gaps(enc, cb, 65536), std::invalid_argument);
  // Long codes: S must exceed twice the longest codeword.
  const auto freq = data::exponential_histogram(40, 2.0, 1);
  const Codebook deep = build_codebook_serial(freq);  // max_len > 32
  EXPECT_THROW(annotate_gaps(enc, deep, 64), std::invalid_argument);
}

TEST(GapDecode, EmptyAndTinyInputs) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  EncodedStream empty;
  empty.chunk_symbols = 1024;
  annotate_gaps(empty, cb);
  EXPECT_TRUE(decode_gaparray<u8>(empty, cb).empty());

  const std::vector<u8> tiny = {0, 1, 1, 0, 1};
  auto enc = encode_serial<u8>(tiny, cb, 1024);
  annotate_gaps(enc, cb);
  EXPECT_EQ(decode_gaparray<u8>(enc, cb), tiny);
}

TEST(GapDecode, FlippedPayloadBitsDetected) {
  // With encoder-recorded boundaries every subsequence must chain exactly
  // into its successor; a flipped payload bit either desynchronizes the
  // walk (chain check) or corrupts a codeword (decode throw). Unlike the
  // self-sync decoder there is no re-synchronization to hide behind, so
  // detection is the norm.
  const auto input = data::generate_text(100000, 11);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  auto enc = encode_serial<u8>(input, cb, 4096);
  annotate_gaps(enc, cb);
  Xoshiro256 rng(5);
  int detected = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto broken = enc;
    broken.payload[rng.below(broken.payload.size())] ^=
        word_t{1} << rng.below(32);
    try {
      const auto got = decode_gaparray<u8>(broken, cb);
      EXPECT_EQ(got.size(), input.size());
    } catch (const std::exception&) {
      ++detected;
    }
  }
  EXPECT_GT(detected, 0);
}

// --- Container-format evolution. ---------------------------------------------

PipelineConfig gap_config(std::size_t nbins = 256) {
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.gap_subseq_bits = 1024;
  return cfg;
}

TEST(GapDecodeFormat, Phf3RoundTrip) {
  const auto input = data::generate_text(120000, 21);
  const auto blob = compress<u8>(input, gap_config());
  ASSERT_TRUE(blob.stream.has_gaps());
  const auto bytes = serialize(blob);
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(std::memcmp(bytes.data(), "PHF3", 4), 0);
  const auto back = deserialize<u8>(bytes);
  EXPECT_EQ(back.stream.gap_subseq_bits, blob.stream.gap_subseq_bits);
  EXPECT_EQ(back.stream.gaps, blob.stream.gaps);
  EXPECT_EQ(back.stream.gap_counts, blob.stream.gap_counts);
  EXPECT_EQ(decompress(back), input);
}

TEST(GapDecodeFormat, Phf2WrittenWithoutGaps) {
  // The version-bump rule's other half: no optional metadata → the old
  // magic and a byte-identical old-layout container.
  const auto input = data::generate_text(120000, 21);
  PipelineConfig cfg;
  const auto bytes = serialize(compress<u8>(input, cfg));
  EXPECT_EQ(std::memcmp(bytes.data(), "PHF2", 4), 0);
  EXPECT_EQ(decompress(deserialize<u8>(bytes)), input);
}

TEST(GapDecodeFormat, GoldenPhf2U8StillDecodesBitExactly) {
  const auto bytes = bytes_of(testdata::kGoldenPhf2U8,
                              sizeof(testdata::kGoldenPhf2U8));
  const auto blob = deserialize<u8>(bytes);
  EXPECT_FALSE(blob.stream.has_gaps());
  const std::vector<u8> expect(
      testdata::kGoldenPhf2U8Input,
      testdata::kGoldenPhf2U8Input + sizeof(testdata::kGoldenPhf2U8Input));
  EXPECT_EQ(decompress(blob), expect);
  // Old containers re-serialize byte-identically: the writer never touches
  // the v2 layout for gap-free streams.
  EXPECT_EQ(serialize(blob), std::vector<u8>(bytes.begin(), bytes.end()));
}

TEST(GapDecodeFormat, GoldenPhf2U16WithOverflowStillDecodesBitExactly) {
  const auto bytes = bytes_of(testdata::kGoldenPhf2U16,
                              sizeof(testdata::kGoldenPhf2U16));
  const auto blob = deserialize<u16>(bytes);
  ASSERT_FALSE(blob.stream.overflow.empty());
  std::vector<u16> expect(sizeof(testdata::kGoldenPhf2U16InputLE) / 2);
  std::memcpy(expect.data(), testdata::kGoldenPhf2U16InputLE,
              sizeof(testdata::kGoldenPhf2U16InputLE));
  EXPECT_EQ(decompress(blob), expect);
  EXPECT_EQ(serialize(blob), std::vector<u8>(bytes.begin(), bytes.end()));
}

TEST(GapDecodeFormat, AnnotatedStreamDecodesIdenticallyToPlain) {
  // Gap metadata must never change WHAT decodes — only how fast.
  const auto input = data::generate_nyx_quant(150000, 23);
  PipelineConfig plain;
  plain.nbins = 1024;
  auto cfg = gap_config(1024);
  const auto a = compress<u16>(input, plain);
  const auto b = compress<u16>(input, cfg);
  EXPECT_EQ(a.stream.payload, b.stream.payload);
  EXPECT_EQ(decompress(a), decompress(b));
}

/// Offset of the optional-field region (the n_fields u32) in a serialized
/// v3 container: magic + sym width + the two sections.
template <typename Sym>
std::size_t field_region_at(const Compressed<Sym>& blob) {
  return 5 + serialize_codebook(blob.codebook).size() +
         serialize_stream(blob.stream).size();
}

/// Append an optional field (tag | len | payload | fnv1a) and bump
/// n_fields in place.
template <typename Sym>
std::vector<u8> with_extra_field(std::vector<u8> bytes,
                                 const Compressed<Sym>& blob, u32 tag,
                                 std::span<const u8> payload) {
  const std::size_t region = field_region_at(blob);
  u32 n_fields = 0;
  std::memcpy(&n_fields, bytes.data() + region, 4);
  ++n_fields;
  std::memcpy(bytes.data() + region, &n_fields, 4);
  const std::size_t at = bytes.size();
  bytes.resize(at + 4 + 8 + payload.size() + 8);
  std::memcpy(bytes.data() + at, &tag, 4);
  const u64 len = payload.size();
  std::memcpy(bytes.data() + at + 4, &len, 8);
  if (!payload.empty()) {
    std::memcpy(bytes.data() + at + 12, payload.data(), payload.size());
  }
  const u64 digest = fnv1a(payload);
  std::memcpy(bytes.data() + at + 12 + payload.size(), &digest, 8);
  return bytes;
}

TEST(GapDecodeFormat, UnknownOptionalFieldIsSkipped) {
  const auto input = data::generate_text(60000, 25);
  const auto blob = compress<u8>(input, gap_config());
  auto bytes = serialize(blob);
  const std::vector<u8> junk = {1, 2, 3, 4, 5};
  bytes = with_extra_field(std::move(bytes), blob, 0x5A5A5A5Au, junk);
  const auto back = deserialize<u8>(bytes);
  EXPECT_TRUE(back.stream.has_gaps());  // GAP1 still parsed
  EXPECT_EQ(decompress(back), input);
}

TEST(GapDecodeFormat, StreamWithOnlyUnknownFieldsFallsBackToOlderTiers) {
  // Forward compatibility in action: a v3 container whose only field is
  // one this reader does not understand deserializes to a gap-free stream
  // that decodes through self-sync / host exactly like an old container —
  // the documented fallback-to-self-sync semantics.
  const auto input = data::generate_text(60000, 27);
  const auto blob = compress<u8>(input, gap_config());
  auto bytes = serialize(blob);
  // Overwrite the GAP1 tag with an unknown one (the field checksum covers
  // only the payload, so the container stays valid).
  const u32 unknown = 0x30585858u;  // "XXX0"
  std::memcpy(bytes.data() + field_region_at(blob) + 4, &unknown, 4);
  const auto back = deserialize<u8>(bytes);
  EXPECT_FALSE(back.stream.has_gaps());
  EXPECT_THROW((void)decode_gaparray<u8>(back.stream, back.codebook),
               std::invalid_argument);
  EXPECT_EQ(decode_selfsync<u8>(back.stream, back.codebook, {}), input);
  EXPECT_EQ(decompress(back), input);  // decode_auto falls back
}

// --- Forged / corrupted metadata. --------------------------------------------

class GapDecodeForged : public ::testing::Test {
 protected:
  void SetUp() override {
    input_ = data::generate_text(80000, 31);
    blob_ = compress<u8>(input_, gap_config());
    bytes_ = serialize(blob_);
    region_ = field_region_at(blob_);
    // Region layout: u32 n_fields | u32 tag | u64 len | payload | u64 sum.
    payload_at_ = region_ + 4 + 4 + 8;
    payload_len_ = static_cast<std::size_t>(
        blob_.stream.gaps.size() + 2 * blob_.stream.gap_counts.size() + 12);
  }

  /// Recompute the GAP1 field checksum after a deliberate payload forge.
  void fix_field_digest(std::vector<u8>& b) const {
    const u64 d = fnv1a(
        std::span<const u8>(b.data() + payload_at_, payload_len_));
    std::memcpy(b.data() + payload_at_ + payload_len_, &d, 8);
  }

  std::vector<u8> input_;
  Compressed<u8> blob_;
  std::vector<u8> bytes_;
  std::size_t region_ = 0;
  std::size_t payload_at_ = 0;
  std::size_t payload_len_ = 0;
};

TEST_F(GapDecodeForged, BitFlipCaughtByFieldChecksum) {
  auto b = bytes_;
  b[payload_at_ + payload_len_ / 2] ^= 0x40;
  EXPECT_THROW((void)deserialize<u8>(b), std::runtime_error);
}

TEST_F(GapDecodeForged, TruncatedFieldRejected) {
  auto b = bytes_;
  b.resize(b.size() - 9);  // into the field checksum / payload
  EXPECT_THROW((void)deserialize<u8>(b), std::runtime_error);
  auto c = bytes_;
  c.resize(region_ + 2);  // into n_fields itself
  EXPECT_THROW((void)deserialize<u8>(c), std::runtime_error);
}

TEST_F(GapDecodeForged, TrailingGarbageRejected) {
  auto b = bytes_;
  b.insert(b.end(), {0xDE, 0xAD});
  EXPECT_THROW((void)deserialize<u8>(b), std::runtime_error);
}

TEST_F(GapDecodeForged, OutOfRangeSubseqBitsRejected) {
  for (const u32 forged : {0u, 16u, 65536u, 0xFFFFFFFFu}) {
    auto b = bytes_;
    std::memcpy(b.data() + payload_at_, &forged, 4);  // subseq_bits
    fix_field_digest(b);
    EXPECT_THROW((void)deserialize<u8>(b), std::runtime_error);
  }
}

TEST_F(GapDecodeForged, EntryCountMismatchRejected) {
  // A valid subseq size whose implied entry count disagrees with the
  // stream geometry must be rejected before the arrays are materialized.
  const u32 forged = 2048;  // metadata arrays still sized for 1024
  auto b = bytes_;
  std::memcpy(b.data() + payload_at_, &forged, 4);
  fix_field_digest(b);
  EXPECT_THROW((void)deserialize<u8>(b), std::runtime_error);
}

TEST_F(GapDecodeForged, ForgedCountsWithValidChecksumCaughtAtDecode) {
  // Move a symbol from one subsequence's count to another: sizes, bounds
  // and checksums all stay valid, so the deserializer accepts it — the
  // kernel's chain/count validation must throw instead of mis-indexing.
  const std::size_t n = blob_.stream.gap_counts.size();
  ASSERT_GE(n, 2u);
  auto b = bytes_;
  const std::size_t counts_at = payload_at_ + 12 + blob_.stream.gaps.size();
  u16 c0 = 0, c1 = 0;
  std::memcpy(&c0, b.data() + counts_at, 2);
  std::memcpy(&c1, b.data() + counts_at + 2, 2);
  ASSERT_GT(c0, 0u);
  --c0;
  ++c1;
  std::memcpy(b.data() + counts_at, &c0, 2);
  std::memcpy(b.data() + counts_at + 2, &c1, 2);
  fix_field_digest(b);
  const auto back = deserialize<u8>(b);  // passes structural validation
  EXPECT_THROW((void)decode_gaparray<u8>(back.stream, back.codebook),
               std::runtime_error);
}

TEST_F(GapDecodeForged, ForgedGapsWithValidChecksumNeverCrash) {
  // Nudge individual gap values while keeping them structurally in range.
  // A shifted start usually fails the chain check; occasionally the
  // Huffman walk re-synchronizes and the chunk decodes to consistent but
  // WRONG symbols — acceptable (same contract as payload bit flips), as
  // long as nothing crashes or reads out of bounds and the checks fire on
  // most forgeries.
  const std::size_t gaps_at = payload_at_ + 12;
  const std::size_t n = blob_.stream.gaps.size();
  ASSERT_GE(n, 8u);
  int detected = 0;
  for (std::size_t i = 1; i < n; i += n / 8) {
    auto b = bytes_;
    b[gaps_at + i] += 1;
    fix_field_digest(b);
    try {
      const auto back = deserialize<u8>(b);
      const auto got = decode_gaparray<u8>(back.stream, back.codebook);
      EXPECT_EQ(got.size(), input_.size());
    } catch (const std::runtime_error&) {
      ++detected;  // parse range check or decode chain check
    }
  }
  EXPECT_GT(detected, 0);
}

TEST_F(GapDecodeForged, DuplicateGapFieldRejected) {
  const auto field = std::vector<u8>(bytes_.begin() + payload_at_,
                                     bytes_.begin() + payload_at_ +
                                         payload_len_);
  const auto b =
      with_extra_field(bytes_, blob_, kContainerFieldGap, field);
  EXPECT_THROW((void)deserialize<u8>(b), std::runtime_error);
}

// --- Tier selection & cancellation. ------------------------------------------

TEST(GapDecodeAuto, SelectsGapArrayWhenMetadataPresent) {
  auto& reg = obs::MetricsRegistry::global();
  const auto input = data::generate_text(100000, 33);
  const auto with = compress<u8>(input, gap_config());
  const auto without = compress<u8>(input, PipelineConfig{});

  const u64 gap0 = reg.counter("decode.gaparray");
  const u64 host0 = reg.counter("decode.host");
  EXPECT_EQ(decode_auto<u8>(with.stream, with.codebook), input);
  EXPECT_EQ(reg.counter("decode.gaparray"), gap0 + 1);
  EXPECT_EQ(reg.counter("decode.host"), host0);
  EXPECT_EQ(decode_auto<u8>(without.stream, without.codebook), input);
  EXPECT_EQ(reg.counter("decode.host"), host0 + 1);
  EXPECT_GE(reg.counter("decode.symbols"), 2 * input.size());
}

// The service's read path routes through decode_auto: a result whose
// stream was annotated (gap_subseq_bits set at compress time) must take
// the gap-array tier with no caller-side opt-in.
TEST(GapDecodeAuto, ServiceDecompressPicksGapArray) {
  auto& reg = obs::MetricsRegistry::global();
  const auto input = data::generate_text(90000, 41);
  auto blob = compress<u8>(input, gap_config());
  svc::CompressResult<u8> r;
  r.codebook = std::make_shared<const Codebook>(blob.codebook);
  r.stream = std::move(blob.stream);
  const u64 gap0 = reg.counter("decode.gaparray");
  EXPECT_EQ(svc::decompress(r), input);
  EXPECT_EQ(reg.counter("decode.gaparray"), gap0 + 1);
}

// End to end over the wire: a client that compressed with gap metadata
// gets the gap-array tier on the server's decompress verb — the PHF3
// container is the only signal, the protocol is unchanged.
TEST(GapDecodeAuto, RpcDecompressPicksGapArray) {
  auto& reg = obs::MetricsRegistry::global();
  rpc::LoopbackHub hub;
  rpc::RpcServer server(hub.listener());
  rpc::RpcClient cli([&] { return hub.connect(); });

  const auto input = data::generate_text(70000, 43);
  const auto blob = compress<u8>(input, gap_config());
  const auto bytes = serialize(blob);
  ASSERT_EQ(std::memcmp(bytes.data(), "PHF3", 4), 0);

  const u64 gap0 = reg.counter("decode.gaparray");
  EXPECT_EQ(cli.decompress(bytes).result.get(), input);
  EXPECT_EQ(reg.counter("decode.gaparray"), gap0 + 1);
}

TEST(GapDecodeAuto, DecompressWithExplicitKind) {
  const auto input = data::generate_nyx_quant(80000, 35);
  const auto blob = compress<u16>(input, gap_config(1024));
  simt::MemTally tally;
  EXPECT_EQ(decompress_with(blob, DecoderKind::kGapArray, &tally), input);
  EXPECT_GT(tally.global_read_bytes, 0u);
  EXPECT_GT(tally.scalar_ops, 0u);
  const auto plain = compress<u16>(input, [] {
    PipelineConfig c;
    c.nbins = 1024;
    return c;
  }());
  EXPECT_THROW((void)decompress_with(plain, DecoderKind::kGapArray),
               std::invalid_argument);
}

TEST(GapDecodeCancel, PreCancelledTokenAbortsImmediately) {
  const auto input = data::generate_text(200000, 37);
  const auto blob = compress<u8>(input, gap_config());
  CancelToken tok;
  tok.request();
  EXPECT_THROW((void)decode_gaparray<u8>(blob.stream, blob.codebook, nullptr,
                                         nullptr, &tok),
               OperationCancelled);
}

TEST(GapDecodeCancel, DeadlineExpiresMidDecode) {
  // auto_advance_every(1, 1ms): each token poll advances the virtual clock
  // a millisecond, so a deadline a few "polls" out expires mid-kernel
  // regardless of real wall time.
  const auto input = data::generate_text(1 << 20, 39);
  const auto blob = compress<u8>(input, gap_config());
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(5e-3), vc);
  EXPECT_THROW((void)decode_gaparray<u8>(blob.stream, blob.codebook, nullptr,
                                         nullptr, &tok),
               DeadlineExpired);
}

TEST(GapDecodeCancel, FarDeadlineDecodesBitExactly) {
  const auto input = data::generate_text(300000, 41);
  const auto blob = compress<u8>(input, gap_config());
  VirtualClock vc;
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(3600.0), vc);
  EXPECT_EQ(decode_gaparray<u8>(blob.stream, blob.codebook, nullptr, nullptr,
                                &tok),
            input);
}

TEST(GapDecodeCancel, DeadlineThroughDecodeAuto) {
  const auto input = data::generate_text(1 << 20, 43);
  const auto blob = compress<u8>(input, gap_config());
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(5e-3), vc);
  EXPECT_THROW(
      (void)decode_auto<u8>(blob.stream, blob.codebook, 0, &tok),
      DeadlineExpired);
}

}  // namespace
}  // namespace parhuff
