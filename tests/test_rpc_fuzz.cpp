// Adversarial wire-protocol suite (runs under ASan+UBSan in CI): truncated
// frames, forged lengths, bad versions/ops, oversized payload declarations,
// mid-frame disconnects and plain garbage, all thrown at a live server over
// raw loopback connections. The bar everywhere: the server answers with a
// typed error or drops the connection — it never crashes, never leaks a
// response slot, and keeps serving valid clients afterwards.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"
#include "rpc/transport_inmem.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

using rpc::Frame;
using rpc::Header;
using rpc::Kind;
using rpc::LoopbackHub;
using rpc::Op;
using rpc::RpcClient;
using rpc::RpcServer;
using rpc::Status;
using rpc::TransportError;

std::vector<u8> ramp_data(std::size_t n, u64 seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

void send_frame(rpc::Connection& conn, const Frame& f) {
  const std::vector<u8> bytes = rpc::encode_frame(f);
  conn.write_all(bytes.data(), bytes.size());
}

Frame read_frame(rpc::Connection& conn) {
  std::array<u8, rpc::kHeaderBytes> hb;
  if (!conn.read_exact(hb.data(), hb.size())) {
    throw TransportError("test: EOF instead of a frame");
  }
  Frame f;
  f.h = rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(hb),
                           rpc::response_payload_bound(rpc::kMaxPayloadBytes));
  f.payload.resize(f.h.payload_len);
  if (f.h.payload_len > 0 &&
      !conn.read_exact(f.payload.data(), f.payload.size())) {
    throw TransportError("test: EOF mid-payload");
  }
  return f;
}

/// Returns true when the connection observed EOF (server dropped it).
bool connection_dropped(rpc::Connection& conn) {
  u8 byte = 0;
  try {
    return !conn.read_exact(&byte, 1);
  } catch (const TransportError&) {
    return true;
  }
}

/// A valid compress request must still work — the liveness probe run after
/// every attack. Retries briefly: the server may still be tearing down the
/// attack connections (a full connection table rejects new ones).
void expect_server_alive(LoopbackHub& hub) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      auto conn = hub.connect();
      Frame req;
      req.h.op = Op::kCompress;
      req.h.request_id = 9999;
      req.payload = ramp_data(2000);
      send_frame(*conn, req);
      const Frame resp = read_frame(*conn);
      EXPECT_EQ(resp.h.status, Status::kOk);
      EXPECT_EQ(resp.h.request_id, 9999u);
      EXPECT_FALSE(resp.payload.empty());
      return;
    } catch (const TransportError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  FAIL() << "server never recovered: every probe connection died";
}

class RpcFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<RpcServer>(hub_.listener());
  }
  LoopbackHub hub_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcFuzz, TruncatedHeaderDropsConnectionQuietly) {
  auto conn = hub_.connect();
  const std::vector<u8> partial(10, 0x42);  // 10 of the 32 header bytes
  conn->write_all(partial.data(), partial.size());
  conn->shutdown();
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, ForgedLengthWithMissingPayloadDropsConnection) {
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kCompress;
  f.h.request_id = 1;
  f.payload.resize(100);
  std::vector<u8> bytes = rpc::encode_frame(f);
  // Ship the header (declaring 100 bytes) but only 10 payload bytes.
  conn->write_all(bytes.data(), rpc::kHeaderBytes + 10);
  conn->shutdown();
  EXPECT_TRUE(connection_dropped(*conn));
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, BadMagicDropsWithoutAResponse) {
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kCompress;
  std::vector<u8> bytes = rpc::encode_frame(f);
  bytes[0] ^= 0xFF;
  conn->write_all(bytes.data(), bytes.size());
  // Alignment is unknowable after a magic mismatch: no typed error, drop.
  EXPECT_TRUE(connection_dropped(*conn));
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, BadVersionGetsTypedErrorAndConnectionSurvives) {
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kCompress;
  f.h.request_id = 31;
  f.payload = {1, 2, 3};
  std::vector<u8> bytes = rpc::encode_frame(f);
  bytes[4] = rpc::kVersion + 7;
  conn->write_all(bytes.data(), bytes.size());
  const Frame err = read_frame(*conn);
  EXPECT_EQ(err.h.status, Status::kUnsupportedVersion);
  EXPECT_EQ(err.h.request_id, 31u);
  // The declared payload was consumed, so the stream is still aligned:
  // a valid request on the SAME connection succeeds.
  Frame ok;
  ok.h.op = Op::kCompress;
  ok.h.request_id = 32;
  ok.payload = ramp_data(500);
  send_frame(*conn, ok);
  const Frame resp = read_frame(*conn);
  EXPECT_EQ(resp.h.status, Status::kOk);
  EXPECT_EQ(resp.h.request_id, 32u);
}

TEST_F(RpcFuzz, BadOpGetsTypedErrorAndResyncs) {
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kCompress;
  f.h.request_id = 55;
  f.payload = {9, 9};
  std::vector<u8> bytes = rpc::encode_frame(f);
  bytes[6] = 200;  // no such op
  conn->write_all(bytes.data(), bytes.size());
  const Frame err = read_frame(*conn);
  EXPECT_NE(err.h.status, Status::kOk);
  EXPECT_EQ(err.h.request_id, 55u);
  Frame ok;
  ok.h.op = Op::kCompress;
  ok.h.request_id = 56;
  ok.payload = ramp_data(500);
  send_frame(*conn, ok);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kOk);
}

TEST_F(RpcFuzz, OversizedPayloadDeclarationIsTypedThenFatal) {
  auto conn = hub_.connect();
  Header h;
  h.op = Op::kCompress;
  h.request_id = 66;
  auto bytes = rpc::encode_header(h);
  const u32 huge = rpc::kMaxPayloadBytes + 1;  // unskippable declaration
  std::memcpy(bytes.data() + 20, &huge, sizeof(huge));
  conn->write_all(bytes.data(), bytes.size());
  // The typed error is the connection's last frame (the server cannot
  // skip a payload it refuses to read), then the connection drops.
  const Frame err = read_frame(*conn);
  EXPECT_NE(err.h.status, Status::kOk);
  EXPECT_EQ(err.h.request_id, 66u);
  EXPECT_TRUE(connection_dropped(*conn));
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, ResponseKindFrameToServerGetsBadRequest) {
  auto conn = hub_.connect();
  Frame f;
  f.h.kind = Kind::kResponse;  // structurally valid, semantically wrong
  f.h.op = Op::kCompress;
  f.h.request_id = 77;
  send_frame(*conn, f);
  const Frame err = read_frame(*conn);
  EXPECT_EQ(err.h.status, Status::kBadRequest);
  EXPECT_EQ(err.h.request_id, 77u);
}

TEST_F(RpcFuzz, MalformedCancelPayloadGetsBadRequest) {
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kCancel;
  f.h.request_id = 88;
  f.payload = {1, 2, 3};  // must be exactly 8 bytes
  send_frame(*conn, f);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kBadRequest);
}

TEST_F(RpcFuzz, GarbageContainerToDecompressGetsBadRequest) {
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kDecompress;
  f.h.request_id = 99;
  f.payload = ramp_data(4096, 13);  // not a PHF2 container
  send_frame(*conn, f);
  const Frame err = read_frame(*conn);
  EXPECT_EQ(err.h.status, Status::kBadRequest);
  EXPECT_EQ(err.h.request_id, 99u);
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, TruncatedContainerToDecompressFailsTyped) {
  // A container that starts valid but is cut short: deserialize must
  // throw (bytesio bounds checks), mapped to kBadRequest — never a crash.
  RpcClient cli([&] { return hub_.connect(); });
  const auto data = ramp_data(20000);
  const std::vector<u8> container =
      cli.compress(std::span<const u8>(data)).result.get();
  auto conn = hub_.connect();
  Frame f;
  f.h.op = Op::kDecompress;
  f.h.request_id = 101;
  f.payload.assign(container.begin(),
                   container.begin() +
                       static_cast<std::ptrdiff_t>(container.size() / 2));
  send_frame(*conn, f);
  const Frame err = read_frame(*conn);
  EXPECT_NE(err.h.status, Status::kOk);
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, BitFlippedContainerNeverCrashesTheDecoder) {
  // Decompress is the untrusted-input hot path: flip one byte at a time
  // across the container and require a typed outcome for each. (The
  // release-mode decoder hardening and the full-range nbins default are
  // what keep these inside the error model.)
  RpcClient cli([&] { return hub_.connect(); });
  const auto data = ramp_data(4000);
  const std::vector<u8> container =
      cli.compress(std::span<const u8>(data)).result.get();
  Xoshiro256 rng(99);
  auto conn = hub_.connect();
  for (int i = 0; i < 32; ++i) {
    std::vector<u8> mutated = container;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<u8>(1u << rng.below(8));
    Frame f;
    f.h.op = Op::kDecompress;
    f.h.request_id = 200 + static_cast<u64>(i);
    f.payload = std::move(mutated);
    send_frame(*conn, f);
    const Frame resp = read_frame(*conn);
    // Either the flip landed somewhere harmless (decode still succeeds —
    // possibly to different bytes) or it failed typed. Both are fine;
    // crashing or hanging is not.
    EXPECT_EQ(resp.h.request_id, 200 + static_cast<u64>(i));
  }
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, RandomGarbageStormNeverKillsTheServer) {
  Xoshiro256 rng(4242);
  for (int round = 0; round < 64; ++round) {
    auto conn = hub_.connect();
    const std::size_t len = 1 + rng.below(200);
    std::vector<u8> junk(len);
    for (auto& b : junk) b = static_cast<u8>(rng.below(256));
    try {
      conn->write_all(junk.data(), junk.size());
      conn->shutdown();
    } catch (const TransportError&) {
      // The server may drop the connection while we're mid-write.
    }
  }
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, MidFrameDisconnectDuringPayloadIsClean) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 received0 = reg.counter("rpc.requests_received");
  const u64 written0 = reg.counter("rpc.responses_written");
  const u64 dropped0 = reg.counter("rpc.responses_dropped");
  const u64 perr0 = reg.counter("rpc.protocol_error_responses");

  for (int i = 0; i < 8; ++i) {
    auto conn = hub_.connect();
    Frame f;
    f.h.op = Op::kCompress;
    f.h.request_id = static_cast<u64>(i);
    f.payload = ramp_data(1000);
    const std::vector<u8> bytes = rpc::encode_frame(f);
    // Cut the stream at a different payload offset each round.
    const std::size_t cut = rpc::kHeaderBytes + 100 * static_cast<u64>(i);
    conn->write_all(bytes.data(), cut);
    conn->shutdown();
  }
  expect_server_alive(hub_);
  // Mid-frame aborts never count as received requests, so the slot
  // balance still holds over the whole episode.
  server_->stop();
  const u64 received = reg.counter("rpc.requests_received") - received0;
  const u64 written = reg.counter("rpc.responses_written") - written0;
  const u64 dropped = reg.counter("rpc.responses_dropped") - dropped0;
  const u64 perr = reg.counter("rpc.protocol_error_responses") - perr0;
  EXPECT_EQ(written + dropped, received + perr);
}

// --- Stream-op fuzz (protocol v3). The bar is unchanged: typed error or
// dropped connection, never UB, never a stuck stream slot, and the
// opened == completed + aborted balance holds over the whole episode.

/// Open a stream over a raw connection; returns the server-assigned id.
u64 raw_stream_begin(rpc::Connection& conn, Op op, u64 request_id) {
  Frame f;
  f.h.op = op;
  f.h.sym_width = 1;
  f.h.request_id = request_id;
  send_frame(conn, f);
  const Frame ack = read_frame(conn);
  EXPECT_EQ(ack.h.status, Status::kOk);
  EXPECT_EQ(ack.payload.size(), 8u);
  u64 sid = 0;
  std::memcpy(&sid, ack.payload.data(), 8);
  return sid;
}

TEST_F(RpcFuzz, InterleavedStreamIdsStayIsolated) {
  auto conn = hub_.connect();
  const u64 a = raw_stream_begin(*conn, Op::kCompressStreamBegin, 1);
  const u64 b = raw_stream_begin(*conn, Op::kCompressStreamBegin, 2);
  ASSERT_NE(a, b);

  // Alternate chunks across the two streams on one connection: each must
  // land in its own codec (a cross-feed would corrupt both containers).
  u64 rid = 10;
  for (int round = 0; round < 3; ++round) {
    for (const u64 sid : {a, b}) {
      Frame chunk;
      chunk.h.op = Op::kCompressStreamChunk;
      chunk.h.request_id = rid++;
      chunk.h.stream_id = sid;
      chunk.payload = ramp_data(700, sid);
      send_frame(*conn, chunk);
      EXPECT_EQ(read_frame(*conn).h.status, Status::kOk);
    }
  }

  // Swapping an id to the WRONG family is typed and kills only that
  // stream — the sibling keeps accepting chunks.
  Frame wrong;
  wrong.h.op = Op::kDecompressStreamChunk;
  wrong.h.request_id = rid++;
  wrong.h.stream_id = a;
  wrong.payload = ramp_data(100);
  send_frame(*conn, wrong);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kBadRequest);

  Frame still_ok;
  still_ok.h.op = Op::kCompressStreamChunk;
  still_ok.h.request_id = rid++;
  still_ok.h.stream_id = b;
  still_ok.payload = ramp_data(700, b);
  send_frame(*conn, still_ok);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kOk);
}

TEST_F(RpcFuzz, TruncatedEndPayloadIsTypedNotFatal) {
  auto conn = hub_.connect();
  const u64 sid = raw_stream_begin(*conn, Op::kCompressStreamBegin, 1);
  Frame end;
  end.h.op = Op::kCompressStreamEnd;
  end.h.request_id = 2;
  end.h.stream_id = sid;
  end.payload.resize(rpc::kStreamEndRequestBytes - 9);  // 7 of 16 bytes
  send_frame(*conn, end);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kBadRequest);
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, ForgedChecksumOnRawEndIsTyped) {
  auto conn = hub_.connect();
  const u64 sid = raw_stream_begin(*conn, Op::kCompressStreamBegin, 1);
  Frame chunk;
  chunk.h.op = Op::kCompressStreamChunk;
  chunk.h.request_id = 2;
  chunk.h.stream_id = sid;
  chunk.payload = ramp_data(900);
  send_frame(*conn, chunk);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kOk);

  Frame end;
  end.h.op = Op::kCompressStreamEnd;
  end.h.request_id = 3;
  end.h.stream_id = sid;
  end.payload = rpc::encode_stream_end_request(
      rpc::StreamEndRequest{900, 0xdeadbeef});  // checksum is a lie
  send_frame(*conn, end);
  EXPECT_EQ(read_frame(*conn).h.status, Status::kBadRequest);
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, BeginReplayFloodShedsPastTheCapAndNeverWedges) {
  auto conn = hub_.connect();
  // Default cap: 4 concurrent streams per connection. A replayed Begin
  // flood gets 4 grants and then typed kQueueFull for every extra —
  // never a hang, never a dropped connection.
  int granted = 0;
  int shed = 0;
  for (u64 i = 0; i < 16; ++i) {
    Frame f;
    f.h.op = Op::kDecompressStreamBegin;
    f.h.sym_width = 1;
    f.h.request_id = i;
    send_frame(*conn, f);
    const Frame ack = read_frame(*conn);
    if (ack.h.status == Status::kOk) {
      ++granted;
    } else {
      EXPECT_EQ(ack.h.status, Status::kQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(granted, 4);
  EXPECT_EQ(shed, 12);
  expect_server_alive(hub_);
}

TEST_F(RpcFuzz, RandomStreamOpStormKeepsTheBalance) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 opened0 = reg.counter("rpc.streams_opened");
  const u64 completed0 = reg.counter("rpc.streams_completed");
  const u64 aborted0 = reg.counter("rpc.streams_aborted");

  Xoshiro256 rng(777);
  for (int round = 0; round < 24; ++round) {
    auto conn = hub_.connect();
    try {
      for (u64 i = 0; i < 8; ++i) {
        Frame f;
        // Ops 6..11: the whole v3 stream family, valid and forged mixes.
        f.h.op = static_cast<Op>(6 + rng.below(6));
        f.h.sym_width = static_cast<u8>(1 + rng.below(2));
        f.h.request_id = i;
        f.h.stream_id = rng.below(4);  // mostly-unknown ids
        if (rng.below(2) == 1) f.payload = ramp_data(rng.below(600), i);
        send_frame(*conn, f);
        const Frame resp = read_frame(*conn);
        EXPECT_EQ(resp.h.request_id, i);  // typed answer, right slot
      }
      conn->shutdown();  // any stream the storm opened is now an orphan
    } catch (const TransportError&) {
      // Dropping us is an acceptable answer to garbage.
    }
  }
  expect_server_alive(hub_);
  // Quiesce, then the stream ledger must balance: everything the storm
  // opened was either completed or counted aborted at teardown.
  server_->stop();
  const u64 opened = reg.counter("rpc.streams_opened") - opened0;
  const u64 completed = reg.counter("rpc.streams_completed") - completed0;
  const u64 aborted = reg.counter("rpc.streams_aborted") - aborted0;
  EXPECT_EQ(opened, completed + aborted);
}

}  // namespace
}  // namespace parhuff
