// Radix sort (Thrust substitute) against std::sort, including stability.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/sort.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

TEST(RadixSort, Empty) {
  std::vector<u64> k;
  std::vector<u32> v;
  radix_sort_by_key(k, v);
  EXPECT_TRUE(k.empty());
}

TEST(RadixSort, SingleElement) {
  std::vector<u64> k = {42};
  std::vector<u32> v = {7};
  radix_sort_by_key(k, v);
  EXPECT_EQ(k[0], 42u);
  EXPECT_EQ(v[0], 7u);
}

TEST(RadixSort, AlreadySorted) {
  std::vector<u64> k = {1, 2, 3, 4, 5};
  std::vector<u32> v = {0, 1, 2, 3, 4};
  radix_sort_by_key(k, v);
  EXPECT_EQ(k, (std::vector<u64>{1, 2, 3, 4, 5}));
  EXPECT_EQ(v, (std::vector<u32>{0, 1, 2, 3, 4}));
}

TEST(RadixSort, AllEqualKeysKeepPayloadOrder) {
  std::vector<u64> k(100, 9);
  std::vector<u32> v(100);
  std::iota(v.begin(), v.end(), 0);
  radix_sort_by_key(k, v);
  for (u32 i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(RadixSort, StableOnDuplicates) {
  std::vector<u64> k = {3, 1, 3, 1, 2};
  std::vector<u32> v = {0, 1, 2, 3, 4};
  radix_sort_by_key(k, v);
  EXPECT_EQ(k, (std::vector<u64>{1, 1, 2, 3, 3}));
  EXPECT_EQ(v, (std::vector<u32>{1, 3, 4, 0, 2}));
}

class RadixSortRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSortRandom, MatchesStdSort) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n * 977 + 5);
  std::vector<u64> k(n);
  std::vector<u32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of small and full-width keys to exercise pass skipping.
    k[i] = (i % 3 == 0) ? rng.below(1000) : rng.next();
    v[i] = static_cast<u32>(i);
  }
  auto ks = k;
  radix_sort_by_key(k, v);
  std::sort(ks.begin(), ks.end());
  EXPECT_EQ(k, ks);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortRandom,
                         ::testing::Values(2, 3, 10, 100, 255, 256, 257, 1000,
                                           4096, 65536));

TEST(RadixSort, PayloadFollowsKeys) {
  Xoshiro256 rng(123);
  const std::size_t n = 5000;
  std::vector<u64> k(n);
  std::vector<u32> v(n);
  std::vector<u64> orig(n);
  for (std::size_t i = 0; i < n; ++i) {
    k[i] = rng.below(1u << 20);
    orig[i] = k[i];
    v[i] = static_cast<u32>(i);
  }
  radix_sort_by_key(k, v);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(k[i], orig[v[i]]);
  }
}

}  // namespace
}  // namespace parhuff
