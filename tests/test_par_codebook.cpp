// Algorithm 1 (parallel two-phase codebook construction): optimality
// against the serial builder across adversarial frequency profiles, on all
// three executors; canonical invariants of GenerateCW; decode metadata.
#include <gtest/gtest.h>

#include <vector>

#include "core/executor.hpp"
#include "core/par_codebook.hpp"
#include "core/tree.hpp"
#include "data/synth_hist.hpp"
#include "simt/coop.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

u64 weighted(std::span<const u64> freq, const Codebook& cb) {
  u64 t = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) t += freq[i] * cb.cw[i].len;
  return t;
}

u64 weighted_serial(std::span<const u64> freq) {
  const auto lens = build_lengths_twoqueue(freq);
  u64 t = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) t += freq[i] * lens[i];
  return t;
}

TEST(GenerateCL, TwoSymbols) {
  SeqExec exec;
  std::vector<u64> f = {2, 5};
  auto cl = generate_cl(exec, f);
  EXPECT_EQ(cl, (std::vector<u32>{1, 1}));
}

TEST(GenerateCL, SingleSymbol) {
  SeqExec exec;
  std::vector<u64> f = {7};
  auto cl = generate_cl(exec, f);
  EXPECT_EQ(cl, (std::vector<u32>{1}));
}

TEST(GenerateCL, UniformPowerOfTwo) {
  SeqExec exec;
  std::vector<u64> f(128, 4);
  auto cl = generate_cl(exec, f);
  for (u32 l : cl) EXPECT_EQ(l, 7u);
}

TEST(GenerateCL, ExponentialChain) {
  // Strictly more-than-doubling freqs: the tree is a path; lengths are
  // n-1, n-1, n-2, ..., 1.
  SeqExec exec;
  std::vector<u64> f;
  u64 v = 1;
  for (int i = 0; i < 12; ++i) {
    f.push_back(v);
    v = v * 2 + 1;
  }
  auto cl = generate_cl(exec, f);
  EXPECT_EQ(cl[0], 11u);
  EXPECT_EQ(cl[1], 11u);
  EXPECT_EQ(cl[11], 1u);
  for (std::size_t i = 1; i + 1 < f.size(); ++i) {
    EXPECT_EQ(cl[i], 12 - i);
  }
}

TEST(GenerateCL, StatsPopulated) {
  SeqExec exec;
  ParCodebookStats st;
  auto f = data::normal_histogram(512, 1 << 20, 3);
  std::vector<u64> sorted = f;
  std::sort(sorted.begin(), sorted.end());
  (void)generate_cl(exec, sorted, &st);
  EXPECT_GT(st.rounds, 0u);
  EXPECT_EQ(st.melds, 511u);  // n-1 internal nodes
}

// --- Optimality property sweep across distributions and executors. --------

struct PCase {
  int dist;
  int seed;
};

class ParCodebookProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

std::vector<u64> make_hist(int dist, u64 seed) {
  switch (dist) {
    case 0: return data::normal_histogram(1024, 1 << 22, seed);
    case 1: return data::zipf_histogram(700, 1.3, 1 << 22, seed);
    case 2: return data::uniform_histogram(333, 5000, seed);
    case 3: return data::exponential_histogram(48, 2.0, seed);
    case 4: return data::kmer_like_histogram(2048, 1 << 22, seed);
    case 5: {
      // Sparse: mostly zeros.
      auto h = data::uniform_histogram(4096, 100, seed);
      Xoshiro256 rng(seed);
      for (auto& f : h) {
        if (rng.below(10) != 0) f = 0;
      }
      return h;
    }
    case 6: {
      // Heavy ties: few distinct frequencies.
      auto h = data::uniform_histogram(512, 4, seed);
      return h;
    }
    default: return data::normal_histogram(64, 1 << 16, seed);
  }
}

TEST_P(ParCodebookProperty, OptimalAndCanonicalOnAllExecutors) {
  const auto [dist, seed] = GetParam();
  const auto freq = make_hist(dist, static_cast<u64>(seed) * 1337 + 11);
  const u64 best = weighted_serial(freq);

  SeqExec seq;
  Codebook cb_seq = build_codebook_parallel(seq, freq);
  EXPECT_EQ(cb_seq.validate(), "") << "dist=" << dist << " seed=" << seed;
  EXPECT_EQ(weighted(freq, cb_seq), best)
      << "dist=" << dist << " seed=" << seed;

  OmpExec omp(0);
  Codebook cb_omp = build_codebook_parallel(omp, freq);
  EXPECT_EQ(cb_omp.validate(), "");
  EXPECT_EQ(weighted(freq, cb_omp), best);

  simt::MemTally tally;
  simt::CooperativeGrid grid(4096, &tally);
  Codebook cb_simt = build_codebook_parallel(grid, freq, nullptr, &tally);
  EXPECT_EQ(cb_simt.validate(), "");
  EXPECT_EQ(weighted(freq, cb_simt), best);
  EXPECT_GT(tally.grid_syncs, 0u);

  // Determinism across executors: identical codebooks, not merely
  // equal-cost ones.
  for (std::size_t i = 0; i < freq.size(); ++i) {
    ASSERT_EQ(cb_seq.cw[i], cb_omp.cw[i]);
    ASSERT_EQ(cb_seq.cw[i], cb_simt.cw[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParCodebookProperty,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 6)));

TEST(ParCodebook, MatchesSerialCostOnRandomSmallHistograms) {
  // Dense randomized sweep over tiny alphabets — the regime where pairing
  // mistakes in the meld rounds would be most visible.
  Xoshiro256 rng(2024);
  SeqExec exec;
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 1 + rng.below(24);
    std::vector<u64> freq(n);
    for (auto& f : freq) f = 1 + rng.below(trial % 2 ? 16 : 1u << 20);
    Codebook cb = build_codebook_parallel(exec, freq);
    ASSERT_EQ(cb.validate(), "") << "trial " << trial;
    ASSERT_EQ(weighted(freq, cb), weighted_serial(freq)) << "trial " << trial;
  }
}

TEST(GenerateCW, FirstEntryMetadata) {
  SeqExec exec;
  // Lengths (freq-ascending positions → non-increasing): {3,3,2,1},
  // reversed to ascending by generate_cw. Canonical: 0, 10, 110, 111.
  std::vector<u32> cl = {3, 3, 2, 1};
  auto gen = generate_cw(exec, cl);
  EXPECT_EQ(gen.max_len, 3u);
  EXPECT_EQ(gen.count[1], 1u);
  EXPECT_EQ(gen.count[2], 1u);
  EXPECT_EQ(gen.count[3], 2u);
  EXPECT_EQ(gen.first[1], 0u);
  EXPECT_EQ(gen.first[2], 0b10u);
  EXPECT_EQ(gen.first[3], 0b110u);
  EXPECT_EQ(gen.entry[1], 0u);
  EXPECT_EQ(gen.entry[2], 1u);
  EXPECT_EQ(gen.entry[3], 2u);
  EXPECT_EQ(gen.entry[4], 4u);
  // Codewords dense ascending within the level; positions are reversed.
  EXPECT_EQ(gen.position[0], 3u);
  EXPECT_EQ(gen.cw[0], 0b0u);
  EXPECT_EQ(gen.cw[1], 0b10u);
  EXPECT_EQ(gen.cw[2], 0b110u);
  EXPECT_EQ(gen.cw[3], 0b111u);
}

TEST(ParCodebook, LargeAlphabet65536) {
  const auto freq = data::normal_histogram(65536, u64{1} << 28, 9);
  OmpExec exec(2);
  Codebook cb = build_codebook_parallel(exec, freq);
  EXPECT_EQ(cb.validate(), "");
  EXPECT_EQ(weighted(freq, cb), weighted_serial(freq));
  EXPECT_EQ(cb.present_symbols(), 65536u);
}

TEST(ParCodebook, AllZeroHistogram) {
  std::vector<u64> freq(64, 0);
  SeqExec exec;
  Codebook cb = build_codebook_parallel(exec, freq);
  EXPECT_EQ(cb.present_symbols(), 0u);
  EXPECT_EQ(cb.validate(), "");
}

}  // namespace
}  // namespace parhuff
