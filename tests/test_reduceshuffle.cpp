// The REDUCE/SHUFFLE-merge encoder: round trips across the (M, r) sweep,
// bit-identity with the serial encoder when nothing breaks, forced breaking
// points, partial chunks, and the MergedCell unit behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "core/decode.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

TEST(MergedCell, AppendConcatenatesMsbFirst) {
  MergedCell<32> a{0b101, 3, false};
  const MergedCell<32> b{0b01, 2, false};
  a.append(b);
  EXPECT_FALSE(a.breaking);
  EXPECT_EQ(a.len, 5);
  EXPECT_EQ(a.bits, 0b10101u);
}

TEST(MergedCell, OverflowMarksBreaking) {
  MergedCell<32> a{0xFFFF, 20, false};
  const MergedCell<32> b{0xFFFF, 20, false};
  a.append(b);
  EXPECT_TRUE(a.breaking);
}

TEST(MergedCell, BreakingPropagates) {
  MergedCell<32> a{0, 1, true};
  const MergedCell<32> b{1, 1, false};
  a.append(b);
  EXPECT_TRUE(a.breaking);
  MergedCell<32> c{1, 1, false};
  c.append(MergedCell<32>{0, 1, true});
  EXPECT_TRUE(c.breaking);
}

TEST(MergeOp, SixtyFourBitBoundary) {
  const auto ok = merge(Codeword{1, 32}, Codeword{1, 32});
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.cw.len, 64);
  const auto bad = merge(Codeword{1, 33}, Codeword{1, 32});
  EXPECT_FALSE(bad.ok);
}

std::vector<u64> hist16(const std::vector<u16>& data, std::size_t nbins) {
  std::vector<u64> h(nbins, 0);
  for (u16 s : data) ++h[s];
  return h;
}

class ReduceShuffleSweep
    : public ::testing::TestWithParam<std::tuple<u32, u32, int>> {};

TEST_P(ReduceShuffleSweep, RoundTripsAndMatchesSerialWhenUnbroken) {
  const auto [M, r, size_sel] = GetParam();
  if (r > M) GTEST_SKIP();
  const std::size_t sizes[] = {0, 1, 100, 4096, 100000, 31337};
  const std::size_t n = sizes[size_sel];

  const auto quant = data::generate_nyx_quant(std::max<std::size_t>(n, 1), 42);
  std::vector<u16> input(quant.begin(),
                         quant.begin() + static_cast<std::ptrdiff_t>(n));
  const auto freq = hist16(quant, 1024);
  const Codebook cb = build_codebook_serial(freq);

  ReduceShuffleConfig cfg{M, r};
  ReduceShuffleStats stats;
  simt::MemTally tally;
  const EncodedStream enc =
      encode_reduceshuffle_simt<u16>(input, cb, cfg, &tally, &stats);
  EXPECT_EQ(enc.reduce_factor, r);

  const auto back = decode_stream<u16>(enc, cb, 2);
  ASSERT_EQ(back, input) << "M=" << M << " r=" << r << " n=" << n;

  if (enc.overflow.empty()) {
    // Without breaking points the stream must be bit-identical to the
    // serial encoder at the same chunking.
    const EncodedStream ser = encode_serial<u16>(input, cb, u32{1} << M);
    EXPECT_EQ(enc.payload, ser.payload);
    EXPECT_EQ(enc.chunk_bits, ser.chunk_bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceShuffleSweep,
                         ::testing::Combine(::testing::Values(6u, 10u, 11u,
                                                              12u),
                                            ::testing::Values(1u, 2u, 3u, 4u,
                                                              6u),
                                            ::testing::Range(0, 6)));

TEST(ReduceShuffle, ForcedBreakingRoundTrips) {
  // Deep codebook (exponential freqs → codes up to ~30 bits) with large r:
  // groups of 2^4 symbols overflow 32-bit cells constantly.
  const auto freq = data::exponential_histogram(28, 2.0, 3);
  std::vector<u64> cum;
  u64 total = 0;
  for (u64 f : freq) {
    total += f;
    cum.push_back(total);
  }
  // Biased sampling toward rare (long-code) symbols to force breaking.
  Xoshiro256 rng(7);
  std::vector<u16> input(20000);
  for (auto& d : input) {
    d = static_cast<u16>(rng.below(28));  // uniform over symbols
  }
  const auto h = hist16(input, 28);
  const Codebook cb = build_codebook_serial(h);

  ReduceShuffleStats stats;
  const EncodedStream enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, 4}, nullptr, &stats);
  EXPECT_GT(stats.breaking_groups, 0u);
  EXPECT_GT(enc.breaking_fraction(), 0.0);
  EXPECT_EQ(decode_stream<u16>(enc, cb, 2), input);
}

TEST(ReduceShuffle, SingleCodewordLongerThanCellBreaks) {
  // A symbol whose code alone exceeds 32 bits must flow through overflow.
  const auto freq = data::exponential_histogram(40, 2.0, 11);
  const Codebook cb = build_codebook_serial(freq);
  unsigned max_len = cb.max_len;
  ASSERT_GT(max_len, 32u);
  // Find a symbol with a >32-bit code.
  u16 deep = 0;
  for (u32 s = 0; s < 40; ++s) {
    if (cb.cw[s].len > 32) {
      deep = static_cast<u16>(s);
      break;
    }
  }
  std::vector<u16> input(512, static_cast<u16>(39));  // shortest code
  input[100] = deep;
  ReduceShuffleStats stats;
  const EncodedStream enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{8, 2}, nullptr, &stats);
  EXPECT_GE(stats.breaking_groups, 1u);
  EXPECT_EQ(decode_stream<u16>(enc, cb, 1), input);
}

TEST(ReduceShuffle, BreakingFractionMatchesStats) {
  const auto freq = data::exponential_histogram(24, 2.1, 5);
  Xoshiro256 rng(9);
  std::vector<u16> input(8192);
  for (auto& d : input) d = static_cast<u16>(rng.below(24));
  const auto h = hist16(input, 24);
  const Codebook cb = build_codebook_serial(h);
  ReduceShuffleStats stats;
  const EncodedStream enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, 3}, nullptr, &stats);
  u64 from_entries = 0;
  for (const auto& e : enc.overflow) from_entries += e.n_symbols;
  EXPECT_EQ(from_entries, stats.breaking_symbols);
  EXPECT_DOUBLE_EQ(enc.breaking_fraction(),
                   static_cast<double>(from_entries) / 8192.0);
}

TEST(ReduceShuffle, InvalidConfigThrows) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  const std::vector<u16> input = {0, 1};
  EXPECT_THROW((void)encode_reduceshuffle_simt<u16>(
                   input, cb, ReduceShuffleConfig{13, 3}, nullptr, nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)encode_reduceshuffle_simt<u16>(
                   input, cb, ReduceShuffleConfig{10, 11}, nullptr, nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)encode_reduceshuffle_simt<u16>(
                   input, cb, ReduceShuffleConfig{10, 0}, nullptr, nullptr),
               std::invalid_argument);
}

TEST(ReduceShuffle, TallyShowsCoalescedTraffic) {
  const auto quant = data::generate_nyx_quant(65536, 4);
  const auto freq = hist16(quant, 1024);
  const Codebook cb = build_codebook_serial(freq);
  simt::MemTally tally;
  (void)encode_reduceshuffle_simt<u16>(quant, cb, ReduceShuffleConfig{10, 3},
                                       &tally, nullptr);
  // Global traffic must be near the useful payload (the whole point of the
  // scheme): sectors * 32 within 2x of bytes read+written.
  const u64 useful = tally.global_read_bytes + tally.global_write_bytes;
  const u64 sector_bytes =
      (tally.global_read_sectors + tally.global_write_sectors) * 32;
  EXPECT_LT(sector_bytes, 2 * useful);
  EXPECT_GT(tally.shared_bytes, 0u);
  EXPECT_EQ(tally.kernel_launches, 2u);
}

}  // namespace
}  // namespace parhuff
