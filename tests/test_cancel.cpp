// Cancellation & deadline propagation into the SIMT stages, driven by the
// deterministic virtual clock (util/clock.hpp): the clock and token
// primitives themselves, a mid-stage abort test per kernel poll-point site
// (histogram serial/SIMT, parallel codebook rounds, reduce-shuffle /
// coarse / prefix-sum chunks), the service-level translation to
// DeadlineExceeded / CancelledError with the svc.cancelled_midstage
// counter, the per-request retry budget, deadline-aware batch triage, and
// a concurrent cancel storm for TSan.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/decode.hpp"
#include "core/decode_simt.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_simt.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "svc/deadline.hpp"
#include "svc/service.hpp"
#include "util/clock.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

using util::Clock;
using util::VirtualClock;

PipelineConfig serial_config(std::size_t nbins = 256) {
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

std::vector<u8> ramp_data(std::size_t n, u64 seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

/// Codebook for the encoder-site tests, built without any token.
Codebook codebook_for(std::span<const u8> data, std::size_t nbins = 256) {
  const std::vector<u64> freq = histogram_serial<u8>(data, nbins);
  return build_codebook(freq, serial_config(nbins));
}

// --- VirtualClock. -----------------------------------------------------------

TEST(VirtualClock, AdvanceAndSleepMoveTimeWithoutBlocking) {
  VirtualClock vc;
  const auto t0 = vc.peek();
  vc.advance_seconds(2.5);
  EXPECT_EQ(vc.peek() - t0, Clock::dur(2.5));
  // A virtual sleep advances instead of blocking.
  const auto wall0 = std::chrono::steady_clock::now();
  vc.sleep_for(Clock::dur(3600.0));
  EXPECT_LT(std::chrono::steady_clock::now() - wall0, std::chrono::seconds(5));
  EXPECT_EQ(vc.peek() - t0, Clock::dur(2.5) + Clock::dur(3600.0));
  // peek() doesn't count as a query; now() does.
  EXPECT_EQ(vc.queries(), 0u);
  (void)vc.now();
  EXPECT_EQ(vc.queries(), 1u);
}

TEST(VirtualClock, AutoAdvanceTicksOnEveryNthQuery) {
  VirtualClock vc;
  vc.auto_advance_every(2, Clock::dur(1e-3));
  const auto t0 = vc.peek();
  (void)vc.now();  // query 1: no tick
  EXPECT_EQ(vc.peek(), t0);
  (void)vc.now();  // query 2: tick
  EXPECT_EQ(vc.peek() - t0, Clock::dur(1e-3));
  (void)vc.now();
  (void)vc.now();  // query 4: second tick
  EXPECT_EQ(vc.peek() - t0, Clock::dur(2e-3));
  vc.auto_advance_every(0, {});  // disable
  (void)vc.now();
  EXPECT_EQ(vc.peek() - t0, Clock::dur(2e-3));
}

TEST(VirtualClock, WaitUntilTimesOutOnVirtualExpiry) {
  VirtualClock vc;
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  // Already-passed target: immediate timeout, no real wait.
  EXPECT_EQ(vc.wait_until(cv, lock, vc.peek() - Clock::dur(1.0)),
            std::cv_status::timeout);
  // Future target: a bounded real nap, then no_timeout (time didn't move).
  const auto future_tp = vc.peek() + Clock::dur(100.0);
  EXPECT_EQ(vc.wait_until(cv, lock, future_tp), std::cv_status::no_timeout);
  // After a concurrent-style advance the same wait reports timeout.
  vc.advance_seconds(200.0);
  EXPECT_EQ(vc.wait_until(cv, lock, future_tp), std::cv_status::timeout);
}

// --- CancelToken. ------------------------------------------------------------

TEST(CancelToken, IdleChecksPassAndRequestLatches) {
  CancelToken tok;
  EXPECT_NO_THROW(tok.check());
  EXPECT_FALSE(tok.requested());
  tok.request();
  EXPECT_TRUE(tok.requested());
  EXPECT_THROW(tok.check(), OperationCancelled);
  tok.request();  // idempotent
  EXPECT_THROW(tok.check(), OperationCancelled);
}

TEST(CancelToken, ArmedDeadlineLatchesExpiry) {
  VirtualClock vc;
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(1e-3), vc);
  EXPECT_NO_THROW(tok.check());  // deadline still ahead
  vc.advance_seconds(2e-3);
  EXPECT_THROW(tok.check(), DeadlineExpired);
  // Expiry is latched: a later request() doesn't rewrite history.
  tok.request();
  EXPECT_THROW(tok.check(), DeadlineExpired);
}

TEST(CancelToken, RequestBeforeExpiryReportsCancelled) {
  VirtualClock vc;
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(3600.0), vc);
  tok.request();
  EXPECT_THROW(tok.check(), OperationCancelled);
}

// --- Per-site mid-stage aborts (one test per kernel poll point). -------------
//
// Pattern: auto_advance_every(1, step) ties virtual time to the token's
// poll points (each armed-token check() queries the clock once), so a
// deadline placed K steps out expires deterministically at the K-th poll —
// provably *inside* the kernel, because the kernel has more poll points
// than K.

TEST(CancelSite, SerialHistogramAbortsMidStageOnDeadline) {
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  const auto data = ramp_data(512 * 1024);  // 8 polls at the 64 Ki stride
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(3.5e-3), vc);  // poll 4 of 8
  EXPECT_THROW((void)histogram_serial<u8>(data, 256, &tok), DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)histogram_serial<u8>(data, 256, &cancelled),
               OperationCancelled);
}

TEST(CancelSite, SimtHistogramAbortsMidGridOnDeadline) {
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  const auto data = ramp_data(64 * 1024);  // every one of the 160 blocks polls
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(50e-3), vc);  // ~poll 50 of 160
  EXPECT_THROW((void)histogram_simt<u8>(data, 256, nullptr,
                                        SimtHistogramConfig{}, &tok),
               DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)histogram_simt<u8>(data, 256, nullptr,
                                        SimtHistogramConfig{}, &cancelled),
               OperationCancelled);
}

TEST(CancelSite, ParallelCodebookAbortsMidRoundOnDeadline) {
  // Fibonacci-like frequencies force a deep, skewed tree: every merge
  // round combines just one pair, so GenerateCL runs ~n rounds and the
  // deadline lands well inside the round loop.
  std::vector<u64> freq(48);
  u64 a = 1, b = 2;
  for (auto& f : freq) {
    f = a;
    const u64 next = a + b;
    a = b;
    b = next;
  }
  PipelineConfig cfg;
  cfg.nbins = freq.size();
  cfg.codebook = CodebookKind::kParallelSimt;

  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  // Query 1 is build_codebook's entry check; expiry at ~query 6 is inside
  // the ~47 merge rounds.
  tok.arm_deadline(vc.peek() + Clock::dur(5.5e-3), vc);
  EXPECT_THROW((void)build_codebook(freq, cfg, nullptr, &tok),
               DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)build_codebook(freq, cfg, nullptr, &cancelled),
               OperationCancelled);
}

TEST(CancelSite, ReduceShuffleAbortsMidChunkOnDeadline) {
  const auto data = ramp_data(64 * 1024);
  const Codebook cb = codebook_for(data);
  ReduceShuffleConfig rs;
  rs.magnitude = 10;  // 64 chunks of 1024 symbols → 64 merge-kernel polls
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(20e-3), vc);  // ~poll 20 of 64
  EXPECT_THROW((void)encode_reduceshuffle_simt<u8>(data, cb, rs, nullptr,
                                                   nullptr, &tok),
               DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)encode_reduceshuffle_simt<u8>(data, cb, rs, nullptr,
                                                   nullptr, &cancelled),
               OperationCancelled);
}

TEST(CancelSite, CoarseEncoderAbortsMidChunkOnDeadline) {
  const auto data = ramp_data(64 * 1024);
  const Codebook cb = codebook_for(data);
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(20e-3), vc);
  EXPECT_THROW((void)encode_coarse_simt<u8>(data, cb, 1024, nullptr, &tok),
               DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)encode_coarse_simt<u8>(data, cb, 1024, nullptr,
                                            &cancelled),
               OperationCancelled);
}

TEST(CancelSite, PrefixSumEncoderAbortsMidChunkOnDeadline) {
  const auto data = ramp_data(64 * 1024);
  const Codebook cb = codebook_for(data);
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(20e-3), vc);
  EXPECT_THROW((void)encode_prefixsum_simt<u8>(data, cb, 1024, nullptr, &tok),
               DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)encode_prefixsum_simt<u8>(data, cb, 1024, nullptr,
                                               &cancelled),
               OperationCancelled);
}

TEST(CancelSite, ArmedFarDeadlineDoesNotPerturbOutput) {
  // The no-fire path must be pure observation: an armed token whose
  // deadline never arrives yields a bit-identical stream to no token.
  const auto data = ramp_data(32 * 1024);
  const Codebook cb = codebook_for(data);
  ReduceShuffleConfig rs;
  rs.magnitude = 10;
  VirtualClock vc;
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(3600.0), vc);
  const EncodedStream plain =
      encode_reduceshuffle_simt<u8>(data, cb, rs);
  const EncodedStream guarded =
      encode_reduceshuffle_simt<u8>(data, cb, rs, nullptr, nullptr, &tok);
  EXPECT_EQ(plain.payload, guarded.payload);
  EXPECT_EQ(plain.chunk_bits, guarded.chunk_bits);
  EXPECT_EQ(plain.overflow_bits, guarded.overflow_bits);
  EXPECT_GT(vc.queries(), 0u);  // the guard really did consult the clock
}

// --- Decode-side aborts (the reverse direction of the same contract). --------

TEST(CancelSite, HostDecodeAbortsMidStreamOnDeadline) {
  const auto data = ramp_data(256 * 1024);
  const Codebook cb = codebook_for(data);
  ReduceShuffleConfig rs;
  rs.magnitude = 10;  // 256 chunks: the decode walk polls at every chunk entry
  const EncodedStream s = encode_reduceshuffle_simt<u8>(data, cb, rs);
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(50e-3), vc);  // ~poll 50 of 256+
  EXPECT_THROW((void)decode_stream<u8>(s, cb, /*threads=*/1, &tok),
               DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)decode_stream<u8>(s, cb, /*threads=*/1, &cancelled),
               OperationCancelled);
}

TEST(CancelSite, SimtDecodeAbortsMidGridOnDeadline) {
  const auto data = ramp_data(256 * 1024);
  const Codebook cb = codebook_for(data);
  ReduceShuffleConfig rs;
  rs.magnitude = 10;
  const EncodedStream s = encode_reduceshuffle_simt<u8>(data, cb, rs);
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(50e-3), vc);
  EXPECT_THROW((void)decode_simt<u8>(s, cb, nullptr, &tok), DeadlineExpired);
  CancelToken cancelled;
  cancelled.request();
  EXPECT_THROW((void)decode_simt<u8>(s, cb, nullptr, &cancelled),
               OperationCancelled);
}

TEST(CancelSite, ArmedFarDeadlineDecodeIsBitIdentical) {
  // Same purity bar as the encode side: a token that never fires must not
  // perturb the decode in any way.
  const auto data = ramp_data(64 * 1024);
  const Codebook cb = codebook_for(data);
  ReduceShuffleConfig rs;
  rs.magnitude = 10;
  const EncodedStream s = encode_reduceshuffle_simt<u8>(data, cb, rs);
  VirtualClock vc;
  CancelToken tok;
  tok.arm_deadline(vc.peek() + Clock::dur(3600.0), vc);
  const std::vector<u8> plain = decode_stream<u8>(s, cb);
  const std::vector<u8> guarded = decode_stream<u8>(s, cb, 0, &tok);
  EXPECT_EQ(plain, guarded);
  EXPECT_EQ(plain, data);
  EXPECT_GT(vc.queries(), 0u);  // the guard really did consult the clock
}

// --- Service-level propagation. ----------------------------------------------

TEST(ServiceCancel, DeadlineExpiresMidEncodeAsDeadlineExceeded) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 midstage0 = reg.counter("svc.cancelled_midstage");
  const u64 completed0 = reg.counter("svc.requests_completed");

  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_max_requests = 1;  // no batch window: encode is the only stage
                              // with poll points under this config
  sc.clock = &vc;
  svc::CompressionService<u8> svc(sc);

  PipelineConfig cfg = serial_config();
  cfg.encoder = EncoderKind::kReduceShuffleSimt;
  cfg.magnitude = 10;                       // 64 chunks → 64 encode polls
  const auto data = ramp_data(64 * 1024);
  svc::SubmitOptions opts;
  // ~7 clock queries happen between submit and the first encode chunk
  // (boundary checks + serial histogram + stage-entry checks), so an
  // expiry at query 20 lands deterministically inside the encode kernel.
  opts.deadline = svc::Deadline::in(20e-3, vc);
  auto sub = svc.submit(std::span<const u8>(data), cfg, opts);
  EXPECT_THROW(sub.result.get(), svc::DeadlineExceeded);
  svc.drain();
  EXPECT_GE(reg.counter("svc.cancelled_midstage"), midstage0 + 1);
  EXPECT_EQ(reg.counter("svc.requests_completed"), completed0);
}

TEST(ServiceCancel, DeadlineExpiresMidHistogramAsDeadlineExceeded) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 midstage0 = reg.counter("svc.cancelled_midstage");

  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(1e-3));
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_max_requests = 1;
  sc.clock = &vc;
  svc::CompressionService<u8> svc(sc);

  PipelineConfig cfg = serial_config();
  cfg.histogram = HistogramKind::kSimt;  // 160 block polls, serial rest
  const auto data = ramp_data(32 * 1024);
  svc::SubmitOptions opts;
  opts.deadline = svc::Deadline::in(20e-3, vc);  // inside the SIMT grid
  auto sub = svc.submit(std::span<const u8>(data), cfg, opts);
  EXPECT_THROW(sub.result.get(), svc::DeadlineExceeded);
  svc.drain();
  EXPECT_GE(reg.counter("svc.cancelled_midstage"), midstage0 + 1);
}

TEST(ServiceCancel, MidFlightCancelAbortsDispatchedRequest) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 midstage0 = reg.counter("svc.cancelled_midstage");
  const u64 cancelled0 = reg.counter("svc.cancelled_requests");

  // The virtual clock freezes the batch window open: the leader is claimed
  // (kDispatched) and the scheduler lingers until the test advances time.
  // cancel() then signals the in-flight token, and the shared histogram
  // abandons at its first poll once the batch finally runs.
  VirtualClock vc;
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 60.0;  // virtual — held open by the frozen clock
  sc.batch_max_requests = 4;
  sc.clock = &vc;
  svc::CompressionService<u8> svc(sc);

  const auto data = ramp_data(4000);
  auto sub = svc.submit(std::span<const u8>(data), serial_config(),
                        svc::SubmitOptions{});
  // Give the scheduler ample real time to claim the leader and park in the
  // window (claiming takes microseconds; the window itself cannot close).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const bool won_pending = sub.handle.cancel();
  vc.advance_seconds(120.0);  // close the window; the batch dispatches
  EXPECT_THROW(sub.result.get(), svc::CancelledError);
  svc.drain();
  if (!won_pending) {
    // The expected path: cancel() found the request dispatched, the token
    // fired inside the shared stage.
    EXPECT_GE(reg.counter("svc.cancelled_midstage"), midstage0 + 1);
  }
  EXPECT_GE(reg.counter("svc.cancelled_requests"), cancelled0 + 1);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(ServiceCancel, ConcurrentCancelStormKeepsCountersBalanced) {
  // TSan target: cancel() races dispatch and the in-kernel polls across
  // worker threads; every future must still resolve and the lifecycle
  // counters must still balance.
  auto& reg = obs::MetricsRegistry::global();
  const u64 submitted0 = reg.counter("svc.requests_submitted");
  const u64 completed0 = reg.counter("svc.requests_completed");
  const u64 failed0 = reg.counter("svc.requests_failed");
  const u64 deadline0 = reg.counter("svc.deadline_exceeded");
  const u64 cancelled0 = reg.counter("svc.cancelled_requests");

  svc::ServiceConfig sc;
  sc.workers = 2;
  sc.batch_window_seconds = 100e-6;
  svc::CompressionService<u8> svc(sc);

  constexpr int kRequests = 48;
  PipelineConfig cfg = serial_config();
  cfg.encoder = EncoderKind::kReduceShuffleSimt;  // polls under the race
  cfg.magnitude = 10;
  std::vector<svc::Submission<u8>> subs;
  subs.reserve(kRequests);
  const auto data = ramp_data(16 * 1024);
  for (int i = 0; i < kRequests; ++i) {
    subs.push_back(
        svc.submit(std::span<const u8>(data), cfg, svc::SubmitOptions{}));
  }
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 4; ++t) {
    cancellers.emplace_back([&, t] {
      for (int i = t; i < kRequests; i += 4) (void)subs[i].handle.cancel();
    });
  }
  int ok = 0, cancelled = 0, other = 0;
  for (auto& sub : subs) {
    try {
      const auto res = sub.result.get();
      ++ok;
      EXPECT_EQ(svc::decompress(res), data);
    } catch (const svc::CancelledError&) {
      ++cancelled;
    } catch (...) {
      ++other;
    }
  }
  for (auto& t : cancellers) t.join();
  svc.drain();

  EXPECT_EQ(ok + cancelled + other, kRequests);
  EXPECT_EQ(other, 0);
  const u64 submitted = reg.counter("svc.requests_submitted") - submitted0;
  const u64 completed = reg.counter("svc.requests_completed") - completed0;
  const u64 failed = reg.counter("svc.requests_failed") - failed0;
  const u64 expired = reg.counter("svc.deadline_exceeded") - deadline0;
  const u64 cancels = reg.counter("svc.cancelled_requests") - cancelled0;
  EXPECT_EQ(submitted, static_cast<u64>(kRequests));
  EXPECT_EQ(submitted, completed + failed + expired + cancels);
}

TEST(ServiceCancel, RetryBudgetIsPerRequestTotal) {
  // Every encode attempt fails; with a budget of 2 each request retries
  // exactly twice end to end — the budget belongs to the request, not to
  // each stage, and resets for the next request.
  util::ScopedFaults scope(util::FaultInjector::global());
  scope.arm("svc.encode", 1.0);
  auto& reg = obs::MetricsRegistry::global();

  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.degraded_fallback = false;
  sc.retry.max_attempts = 2;
  sc.retry.backoff.initial_seconds = 10e-6;
  sc.retry.backoff.max_seconds = 50e-6;
  svc::CompressionService<u8> svc(sc);
  const auto data = ramp_data(2000);
  for (int round = 0; round < 2; ++round) {
    const u64 retries0 = reg.counter("svc.retries");
    auto fut = svc.submit(std::span<const u8>(data), serial_config());
    EXPECT_THROW((void)fut.get(), util::InjectedFault);
    EXPECT_EQ(reg.counter("svc.retries"), retries0 + 2);
  }
}

TEST(ServiceCancel, TriageSkipsMembersBelowExpectedServiceTime) {
  auto& reg = obs::MetricsRegistry::global();
  // Prime the latency estimate: enough heavy samples that the median of
  // svc.request_seconds is ~0.5 s regardless of what earlier tests in
  // this binary recorded.
  for (int i = 0; i < 512; ++i) reg.histo_record("svc.request_seconds", 0.5);
  const u64 triaged0 = reg.counter("svc.triage_skipped");

  VirtualClock vc;
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 1.0;  // held open by the frozen virtual clock
  sc.batch_max_requests = 8;
  sc.clock = &vc;
  svc::CompressionService<u8> svc(sc);

  const auto data = ramp_data(2000);
  // Leader (no deadline) parks the scheduler in the batch window; the
  // member's 10 ms of remaining budget is far below the ~0.5 s expected
  // service time, so the sweep triages it instead of batching it.
  auto leader =
      svc.submit(std::span<const u8>(data), serial_config()).share();
  svc::SubmitOptions opts;
  opts.deadline = svc::Deadline::in(10e-3, vc);
  auto doomed = svc.submit(std::span<const u8>(data), serial_config(), opts);
  // Let the scheduler's sweep observe the member while virtual time is
  // still short of its deadline (sweeps run every ~200 µs of real time
  // while the window is open) — that observation is the triage.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  vc.advance_seconds(5.0);  // close the window
  EXPECT_THROW(doomed.result.get(), svc::DeadlineExceeded);
  EXPECT_NO_THROW((void)leader.get());
  svc.drain();
  EXPECT_GE(reg.counter("svc.triage_skipped"), triaged0 + 1);
}

}  // namespace
}  // namespace parhuff
