// SIMT simulator substrate: block/shared-memory/barrier semantics, warp
// primitives, atomics, cooperative grid, and the sector-expansion math of
// the memory model.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/atomics.hpp"
#include "simt/block.hpp"
#include "simt/coop.hpp"
#include "simt/mem_model.hpp"
#include "simt/spec.hpp"
#include "simt/warp.hpp"

namespace parhuff::simt {
namespace {

TEST(Block, EveryThreadRunsExactlyOnce) {
  constexpr int kGrid = 8, kBlock = 64;
  std::vector<int> hits(kGrid * kBlock, 0);
  launch(kGrid, kBlock, nullptr, [&](BlockCtx& blk) {
    blk.threads([&](int tid) { hits[blk.global_id(tid)] += 1; });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Block, SharedMemoryVisibleAcrossRegions) {
  launch(4, 32, nullptr, [&](BlockCtx& blk) {
    auto sh = blk.shared_array<int>(32);
    blk.threads([&](int tid) { sh[tid] = tid * 3; });
    blk.sync();
    blk.threads([&](int tid) { EXPECT_EQ(sh[tid], tid * 3); });
  });
}

TEST(Block, SharedMemoryIsPerBlock) {
  std::vector<int> block_sums(16, 0);
  launch(16, 128, nullptr, [&](BlockCtx& blk) {
    auto sh = blk.shared_array<int>(1);
    sh[0] = 0;
    blk.threads([&](int) { sh[0] += 1; });
    block_sums[blk.block_id()] = sh[0];
  });
  for (int s : block_sums) EXPECT_EQ(s, 128);
}

TEST(Block, GridReductionViaGlobalAtomics) {
  u64 total = 0;
  constexpr int kGrid = 32, kBlock = 256;
  launch(kGrid, kBlock, nullptr, [&](BlockCtx& blk) {
    auto sh = blk.shared_array<u64>(1);
    sh[0] = 0;
    blk.threads(
        [&](int tid) { sh[0] += static_cast<u64>(blk.global_id(tid)); });
    blk.sync();
    atomic_add(total, sh[0]);
  });
  const u64 n = kGrid * kBlock;
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(Atomics, MinMaxCas) {
  u32 mn = 1000, mx = 0;
  u64 counter = 0;
  launch(16, 64, nullptr, [&](BlockCtx& blk) {
    blk.threads([&](int tid) {
      const u32 v = static_cast<u32>(blk.global_id(tid));
      atomic_min(mn, v);
      atomic_max(mx, v);
      atomic_add(counter, u64{1});
    });
  });
  EXPECT_EQ(mn, 0u);
  EXPECT_EQ(mx, 16u * 64 - 1);
  EXPECT_EQ(counter, 16u * 64);
  u32 slot = 5;
  EXPECT_EQ(atomic_cas(slot, 5u, 9u), 5u);  // returns old value
  EXPECT_EQ(slot, 9u);
  EXPECT_EQ(atomic_cas(slot, 5u, 1u), 9u);  // no swap on mismatch
  EXPECT_EQ(slot, 9u);
}

TEST(Warp, LaneIterationAndBallot) {
  launch(1, 70, nullptr, [&](BlockCtx& blk) {
    int warps = 0;
    int lanes = 0;
    for_each_warp(blk, [&](WarpCtx& w) {
      ++warps;
      lanes += w.active_lanes();
      const std::uint32_t even = w.ballot([](int l) { return l % 2 == 0; });
      // Even lanes of the active set.
      std::uint32_t expect = 0;
      for (int l = 0; l < w.active_lanes(); l += 2) expect |= 1u << l;
      EXPECT_EQ(even, expect);
    });
    EXPECT_EQ(warps, 3);       // 70 threads = 32 + 32 + 6
    EXPECT_EQ(lanes, 70);
  });
}

TEST(Warp, ReduceAndScan) {
  launch(1, 32, nullptr, [&](BlockCtx& blk) {
    for_each_warp(blk, [&](WarpCtx& w) {
      std::array<int, kWarpSize> v{};
      w.lanes([&](int l) { v[l] = l + 1; });
      EXPECT_EQ(w.reduce_add(v), 32 * 33 / 2);
      w.lanes([&](int l) { v[l] = 1; (void)l; });
      w.scan_inclusive(v);
      for (int l = 0; l < 32; ++l) EXPECT_EQ(v[l], l + 1);
    });
  });
}

TEST(Warp, DivergenceCounted) {
  MemTally tally;
  launch(1, 64, &tally, [&](BlockCtx& blk) {
    for_each_warp(blk, [&](WarpCtx& w) {
      (void)w.ballot([](int l) { return l < 7; });   // divergent
      (void)w.ballot([](int) { return true; });      // convergent
    });
  });
  EXPECT_EQ(tally.divergent_branches, 2u);  // one per warp
}

TEST(Coop, RegionsAreBarrierOrdered) {
  MemTally tally;
  CooperativeGrid grid(1024, &tally);
  std::vector<int> v(10000, 0);
  grid.par(v.size(), [&](std::size_t i) { v[i] = static_cast<int>(i); });
  u64 sum = 0;
  grid.seq([&] {
    for (int x : v) sum += static_cast<u64>(x);
  });
  EXPECT_EQ(sum, u64{9999} * 10000 / 2);
  EXPECT_EQ(tally.kernel_launches, 1u);
  EXPECT_EQ(tally.grid_syncs, 2u);
}

TEST(MemModel, CoalescedSectorMath) {
  MemTally t;
  // 64 coalesced 4-byte reads = 2 full warps x 128B = 8 sectors.
  t.global_read(64, 4, Pattern::kCoalesced);
  EXPECT_EQ(t.global_read_bytes, 256u);
  EXPECT_EQ(t.global_read_sectors, 8u);
}

TEST(MemModel, StridedPaysFullSectorPerAccess) {
  MemTally t;
  t.global_read(64, 4, Pattern::kStrided);
  EXPECT_EQ(t.global_read_sectors, 64u);
}

TEST(MemModel, BroadcastPaysOncePerWarp) {
  MemTally t;
  t.global_read(64, 8, Pattern::kBroadcast);
  EXPECT_EQ(t.global_read_sectors, 2u);
}

TEST(MemModel, PartialWarpRoundsUp) {
  MemTally t;
  t.global_read(33, 4, Pattern::kCoalesced);  // 1 full warp + 1 lane
  EXPECT_EQ(t.global_read_sectors, 4u + 4u);
}

TEST(MemModel, Accumulation) {
  MemTally a, b;
  a.global_write(10, 4, Pattern::kCoalesced);
  b.global_write(10, 4, Pattern::kCoalesced);
  b.kernel_launches = 3;
  a += b;
  EXPECT_EQ(a.global_write_bytes, 80u);
  EXPECT_EQ(a.kernel_launches, 3u);
}

TEST(Spec, DeviceFactories) {
  const DeviceSpec v = DeviceSpec::v100();
  const DeviceSpec tu = DeviceSpec::rtx5000();
  EXPECT_GT(v.mem_bandwidth_gbps, tu.mem_bandwidth_gbps);
  EXPECT_GT(v.mem_bytes_per_sec(), 0.0);
  EXPECT_GT(v.bulk_ops_per_sec(), tu.bulk_ops_per_sec());
}

TEST(SharedMem, AlignedAllocation) {
  SharedMem sh(1024);
  auto a = sh.alloc<u8>(3);
  auto b = sh.alloc<u64>(2);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % alignof(u64), 0u);
}

}  // namespace
}  // namespace parhuff::simt
