// Dataset generators: determinism, size contracts, and entropy profiles in
// the band of the paper's measured average bitwidths (Table V).
#include <gtest/gtest.h>

#include "core/entropy.hpp"
#include "core/histogram.hpp"
#include "data/datasets.hpp"
#include "data/dnagen.hpp"
#include "data/synth_hist.hpp"

namespace parhuff {
namespace {

double byte_entropy(const std::vector<u8>& bytes) {
  const auto h = histogram_serial<u8>(bytes, 256);
  return shannon_entropy(h);
}

struct ProfileCase {
  const char* name;
  double lo, hi;  // acceptable entropy band around the paper's avg bits
};

class DatasetProfile : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(DatasetProfile, EntropyInPaperBand) {
  const auto& pc = GetParam();
  const auto ds = data::generate(pc.name, 2 * MiB, 7);
  ASSERT_FALSE(ds.bytes8.empty());
  const double ent = byte_entropy(ds.bytes8);
  EXPECT_GT(ent, pc.lo) << pc.name;
  EXPECT_LT(ent, pc.hi) << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, DatasetProfile,
    ::testing::Values(ProfileCase{"ENWIK8", 4.2, 5.8},
                      ProfileCase{"ENWIK9", 4.2, 5.8},
                      ProfileCase{"MR", 3.0, 5.0},
                      ProfileCase{"NCI", 1.9, 3.6},
                      ProfileCase{"FLAN_1565", 3.2, 5.0}),
    [](const auto& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Datasets, SizesExact) {
  for (const char* name : {"ENWIK8", "MR", "NCI", "FLAN_1565"}) {
    const auto ds = data::generate(name, 123456, 1);
    EXPECT_EQ(ds.bytes8.size(), 123456u) << name;
  }
  const auto nyx = data::generate("NYX-QUANT", 100000, 1);
  EXPECT_EQ(nyx.syms16.size(), 50000u);
}

TEST(Datasets, Deterministic) {
  const auto a = data::generate("NCI", 50000, 42);
  const auto b = data::generate("NCI", 50000, 42);
  const auto c = data::generate("NCI", 50000, 43);
  EXPECT_EQ(a.bytes8, b.bytes8);
  EXPECT_NE(a.bytes8, c.bytes8);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW((void)data::generate("NOPE", 100, 1), std::invalid_argument);
}

TEST(Datasets, RegistryHasSixPaperRows) {
  const auto& reg = data::paper_datasets();
  ASSERT_EQ(reg.size(), 6u);
  EXPECT_EQ(reg[0].name, "ENWIK8");
  EXPECT_EQ(reg[5].name, "NYX-QUANT");
  for (const auto& d : reg) {
    EXPECT_GT(d.paper_avg_bits, 0.5);
    EXPECT_GT(d.paper_encode_v100, d.paper_encode_rtx);
  }
}

TEST(Kmer, PackUnpackRoundTrip) {
  const auto bytes = data::generate_genbank(100000, 9);
  for (unsigned k : {3u, 4u, 5u}) {
    const auto s = data::kmer_pack(bytes, k);
    EXPECT_EQ(s.symbols.size(), (bytes.size() + k - 1) / k);
    EXPECT_GE(s.nbins, s.distinct);
    const auto back = data::kmer_unpack(s, k, bytes.size());
    EXPECT_EQ(back, bytes) << "k=" << k;
  }
}

TEST(Kmer, AlphabetGrowsWithK) {
  const auto bytes = data::generate_genbank(2 * MiB, 5);
  const auto s3 = data::kmer_pack(bytes, 3);
  const auto s4 = data::kmer_pack(bytes, 4);
  const auto s5 = data::kmer_pack(bytes, 5);
  EXPECT_LT(s3.distinct, s4.distinct);
  EXPECT_LT(s4.distinct, s5.distinct);
  // The Table III regime: thousands of symbols by k=4..5.
  EXPECT_GT(s4.distinct, 1000u);
  EXPECT_GT(s5.distinct, 2000u);
}

TEST(Kmer, RejectsBadK) {
  const std::vector<u8> bytes = {1, 2, 3};
  EXPECT_THROW((void)data::kmer_pack(bytes, 0), std::invalid_argument);
  EXPECT_THROW((void)data::kmer_pack(bytes, 9), std::invalid_argument);
}

TEST(SynthHist, ShapesAndSizes) {
  const auto n = data::normal_histogram(4096, 1 << 24, 1);
  EXPECT_EQ(n.size(), 4096u);
  for (u64 f : n) EXPECT_GE(f, 1u);
  // Normal: center bins dominate edges.
  EXPECT_GT(n[2048], n[10] * 4);

  const auto e = data::exponential_histogram(32, 2.0, 1);
  EXPECT_LT(e[0], e[31]);

  const auto z = data::zipf_histogram(1000, 1.2, 1 << 22, 1);
  EXPECT_EQ(z.size(), 1000u);

  const auto km = data::kmer_like_histogram(2048, 1 << 22, 1);
  std::size_t populated = 0;
  for (u64 f : km) populated += f > 0 ? 1 : 0;
  EXPECT_EQ(populated, 2048u);  // exactly nbins populated symbols
}

}  // namespace
}  // namespace parhuff
