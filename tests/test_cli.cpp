// CLI flag parser.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace parhuff {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, Positional) {
  const auto a = parse({"c", "in.txt", "out.phf"});
  ASSERT_EQ(a.positional().size(), 3u);
  EXPECT_EQ(a.positional()[0], "c");
  EXPECT_EQ(a.positional()[2], "out.phf");
}

TEST(Cli, FlagWithSpaceValue) {
  const auto a = parse({"--nbins", "1024"});
  EXPECT_TRUE(a.has("nbins"));
  EXPECT_EQ(a.get_int("nbins", 0), 1024);
}

TEST(Cli, FlagWithEqualsValue) {
  const auto a = parse({"--encoder=adaptive"});
  EXPECT_EQ(a.get_string("encoder", ""), "adaptive");
}

TEST(Cli, BareBooleanFlag) {
  const auto a = parse({"--verbose"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_FALSE(a.get_bool("quiet", false));
}

TEST(Cli, BooleanValues) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
  EXPECT_THROW((void)parse({"--x=maybe"}).get_bool("x", false),
               std::invalid_argument);
}

TEST(Cli, MixedPositionalAndFlags) {
  const auto a = parse({"c", "--nbins", "256", "in", "--fast", "out"});
  // "--fast out": the next token is not a flag, so it binds as a value —
  // documented greedy behaviour; only {"c", "in"} stay positional.
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[1], "in");
  EXPECT_EQ(a.get_int("nbins", 0), 256);
  EXPECT_TRUE(a.has("fast"));
  EXPECT_EQ(a.get_string("fast", ""), "out");
}

TEST(Cli, LastOccurrenceWins) {
  const auto a = parse({"--n=1", "--n=2"});
  EXPECT_EQ(a.get_int("n", 0), 2);
}

TEST(Cli, Defaults) {
  const auto a = parse({});
  EXPECT_EQ(a.get_int("missing", 42), 42);
  EXPECT_EQ(a.get_string("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
}

TEST(Cli, TypeErrors) {
  EXPECT_THROW((void)parse({"--n=abc"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--n=1.5x"}).get_double("n", 0),
               std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(parse({"--scale=0.25"}).get_double("scale", 0), 0.25);
}

TEST(Cli, UnknownDetection) {
  const auto a = parse({"--nbins=1", "--typo=2"});
  const auto bad = a.unknown({"nbins"});
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "typo");
}

}  // namespace
}  // namespace parhuff
