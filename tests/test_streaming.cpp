// Streaming (multi-segment, shared-codebook) compression API.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/streaming.hpp"
#include "data/quant.hpp"
#include "data/textgen.hpp"

namespace parhuff {
namespace {

std::vector<std::vector<u8>> text_segments(std::size_t n_segments,
                                           std::size_t each, u64 seed) {
  std::vector<std::vector<u8>> out;
  for (std::size_t i = 0; i < n_segments; ++i) {
    out.push_back(data::generate_text(each, seed + i));
  }
  return out;
}

TEST(Streaming, MultiSegmentRoundTrip) {
  const auto segments = text_segments(5, 60000, 100);
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  for (const auto& seg : segments) sc.observe(seg);
  sc.freeze();

  const auto header = sc.header();
  std::vector<std::vector<u8>> frames;
  for (const auto& seg : segments) frames.push_back(sc.encode_segment(seg));

  StreamingDecompressor<u8> sd(header);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(sd.decode_segment(frames[i]), segments[i]) << "segment " << i;
  }
}

TEST(Streaming, HeaderShipsCodebookOnce) {
  const auto segments = text_segments(8, 40000, 7);
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  for (const auto& seg : segments) sc.observe(seg);
  sc.freeze();
  const std::size_t header_bytes = sc.header().size();
  std::size_t frame_bytes = 0;
  for (const auto& seg : segments) {
    frame_bytes += sc.encode_segment(seg).size();
  }
  // The per-frame overhead excludes the codebook: total must be well below
  // 8x(standalone container) for 8 segments.
  EXPECT_LT(header_bytes, 3000u);
  EXPECT_GT(frame_bytes, header_bytes * 8);
}

TEST(Streaming, SplitFramesFromConcatenation) {
  const auto segments = text_segments(4, 20000, 55);
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  for (const auto& seg : segments) sc.observe(seg);
  sc.freeze();
  std::vector<u8> blob;
  for (const auto& seg : segments) {
    const auto f = sc.encode_segment(seg);
    blob.insert(blob.end(), f.begin(), f.end());
  }
  StreamingDecompressor<u8> sd(sc.header());
  const auto frames = StreamingDecompressor<u8>::split_frames(blob);
  ASSERT_EQ(frames.size(), segments.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(sd.decode_segment(frames[i]), segments[i]);
  }
}

TEST(Streaming, MultiByteSymbolsWithAdaptiveEncoder) {
  PipelineConfig cfg;
  cfg.nbins = 1024;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  StreamingCompressor<u16> sc(cfg);
  std::vector<std::vector<u16>> segments;
  for (int i = 0; i < 3; ++i) {
    segments.push_back(data::generate_nyx_quant(80000, 200 + i));
  }
  for (const auto& seg : segments) sc.observe(seg);
  sc.freeze();
  StreamingDecompressor<u16> sd(sc.header());
  for (const auto& seg : segments) {
    EXPECT_EQ(sd.decode_segment(sc.encode_segment(seg)), seg);
  }
}

TEST(Streaming, ProtocolMisuseThrows) {
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  const std::vector<u8> seg = {1, 2, 3};
  EXPECT_THROW((void)sc.header(), std::logic_error);
  EXPECT_THROW((void)sc.encode_segment(seg), std::logic_error);
  EXPECT_THROW(sc.freeze(), std::logic_error);  // nothing observed
  sc.observe(seg);
  sc.freeze();
  EXPECT_THROW(sc.freeze(), std::logic_error);
  EXPECT_THROW(sc.observe(seg), std::logic_error);
}

TEST(Streaming, SmoothingMakesUnseenSymbolsEncodable) {
  PipelineConfig cfg;
  cfg.nbins = 16;
  StreamingCompressor<u8> sc(cfg);
  sc.observe(std::vector<u8>{0, 1, 0, 1, 1, 0});
  sc.smooth();
  sc.freeze();
  const std::vector<u8> alien = {0, 1, 9, 15, 3};
  StreamingDecompressor<u8> sd(sc.header());
  EXPECT_EQ(sd.decode_segment(sc.encode_segment(alien)), alien);
  // Smoothing after freeze is a protocol error.
  EXPECT_THROW(sc.smooth(), std::logic_error);
}

TEST(Streaming, UnseenSymbolInSegmentThrows) {
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  const std::vector<u8> observed = {0, 1, 0, 1, 1};
  sc.observe(observed);
  sc.freeze();
  const std::vector<u8> alien = {0, 1, 9};
  EXPECT_THROW((void)sc.encode_segment(alien), std::runtime_error);
}

TEST(Streaming, DecoderRejectsBadHeaderAndFrames) {
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  const auto seg = data::generate_text(5000, 1);
  sc.observe(seg);
  sc.freeze();
  auto header = sc.header();
  auto frame = sc.encode_segment(seg);

  auto bad_header = header;
  bad_header[0] = 'X';
  EXPECT_THROW(StreamingDecompressor<u8> sd(bad_header), std::runtime_error);
  EXPECT_THROW(StreamingDecompressor<u16> sd16(header), std::runtime_error);

  StreamingDecompressor<u8> sd(header);
  auto bad_frame = frame;
  bad_frame[0] ^= 0xFF;
  EXPECT_THROW((void)sd.decode_segment(bad_frame), std::runtime_error);
  auto truncated = frame;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)sd.decode_segment(truncated), std::runtime_error);
}

TEST(Streaming, ResetReturnsCompressorToObserving) {
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);

  const auto first = data::generate_text(30000, 11);
  sc.observe(first);
  sc.freeze();
  StreamingDecompressor<u8> sd1(sc.header());
  EXPECT_EQ(sd1.decode_segment(sc.encode_segment(first)), first);

  sc.reset();
  EXPECT_FALSE(sc.frozen());
  EXPECT_THROW((void)sc.header(), std::logic_error);  // back to OBSERVING
  EXPECT_THROW(sc.freeze(), std::logic_error);        // histogram cleared

  // The same object trains and serves a second, unrelated stream.
  const auto second = data::generate_text(30000, 99);
  sc.observe(second);
  sc.freeze();
  StreamingDecompressor<u8> sd2(sc.header());
  EXPECT_EQ(sd2.decode_segment(sc.encode_segment(second)), second);
}

TEST(Streaming, ConcurrentSegmentDecodeFromOneDecompressor) {
  const auto segments = text_segments(16, 20000, 400);
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  for (const auto& seg : segments) sc.observe(seg);
  sc.freeze();
  std::vector<std::vector<u8>> frames;
  for (const auto& seg : segments) frames.push_back(sc.encode_segment(seg));

  // One decompressor shared by many threads: decode_segment is const and
  // reads only the immutable codebook, so this must be race-free.
  StreamingDecompressor<u8> sd(sc.header());
  std::vector<std::vector<u8>> out(segments.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) <
           frames.size();) {
        out[i] = sd.decode_segment(frames[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(out[i], segments[i]) << "segment " << i;
  }
}

TEST(Streaming, EmptySegment) {
  PipelineConfig cfg;
  cfg.nbins = 256;
  StreamingCompressor<u8> sc(cfg);
  sc.observe(std::vector<u8>{5, 6, 7});
  sc.freeze();
  StreamingDecompressor<u8> sd(sc.header());
  const auto frame = sc.encode_segment(std::vector<u8>{});
  EXPECT_TRUE(sd.decode_segment(frame).empty());
}

}  // namespace
}  // namespace parhuff
