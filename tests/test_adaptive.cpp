// Adaptive per-chunk reduce factors (§VII future-work extension) and the
// 64-bit cell variant, driven through the proptest harness: every input is
// a seeded case from a named family, failures report
// family/case/seed for exact replay, and failing streams shrink by halving
// before being reported. Also pins the lookup-phase bit accounting
// (AdaptiveStats::total_code_bits) the service's adaptive codebook
// lifecycle prices stale books with.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <sstream>
#include <vector>

#include "core/decode.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/entropy.hpp"
#include "core/format.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "core/tree.hpp"
#include "data/datasets.hpp"
#include "data/textgen.hpp"
#include "proptest.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

// ---------------------------------------------------------------------------
// Seeded u16 stream families. Each produces `n` symbols over a 1024-bin
// alphabet from a seed; together they cover the adaptive encoder's
// regimes: locally-varying density (its reason to exist), stationary
// data (where it must match fixed-r), degenerate shapes.

enum class StreamKind {
  kBimodal,   ///< calm stretches + dense bursts: fixed-r's worst case
  kNyx,       ///< stationary quantization codes: every chunk picks one r
  kUniform,   ///< high-entropy noise
  kSubChunk,  ///< shorter than one chunk
  kSingle,    ///< one symbol
};

const char* stream_kind_name(StreamKind k) {
  switch (k) {
    case StreamKind::kBimodal: return "bimodal";
    case StreamKind::kNyx: return "nyx";
    case StreamKind::kUniform: return "uniform";
    case StreamKind::kSubChunk: return "subchunk";
    case StreamKind::kSingle: return "single";
  }
  return "?";
}

/// Bimodal stream: long stretches of near-constant symbols (1-2 bit codes)
/// interleaved with dense high-entropy bursts — the worst case for a
/// single global reduce factor.
std::vector<u16> bimodal_stream(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u16> v;
  v.reserve(n);
  while (v.size() < n) {
    const std::size_t calm = 2000 + rng.below(4000);
    for (std::size_t i = 0; i < calm && v.size() < n; ++i) {
      v.push_back(static_cast<u16>(rng.below(3)));
    }
    const std::size_t burst = 500 + rng.below(2000);
    for (std::size_t i = 0; i < burst && v.size() < n; ++i) {
      v.push_back(static_cast<u16>(3 + rng.below(1021)));
    }
  }
  return v;
}

std::vector<u16> make_stream(StreamKind kind, std::size_t n, u64 seed) {
  switch (kind) {
    case StreamKind::kBimodal: return bimodal_stream(n, seed);
    case StreamKind::kNyx: return data::generate_nyx_quant(n, seed);
    case StreamKind::kUniform: {
      Xoshiro256 rng(seed);
      std::vector<u16> v(n);
      for (auto& s : v) s = static_cast<u16>(rng.below(1024));
      return v;
    }
    case StreamKind::kSubChunk: return bimodal_stream(std::min<std::size_t>(n, 1023), seed);
    case StreamKind::kSingle: return {static_cast<u16>(seed % 1024)};
  }
  return {};
}

std::size_t stream_default_n(StreamKind kind) {
  switch (kind) {
    case StreamKind::kBimodal: return 120000;
    case StreamKind::kNyx: return 120000;
    case StreamKind::kUniform: return 50000;
    case StreamKind::kSubChunk: return 1023;
    case StreamKind::kSingle: return 1;
  }
  return 0;
}

using StreamProperty = std::function<std::optional<std::string>(
    const std::vector<u16>&, u64 seed)>;

/// find_field_failure's idiom for symbol streams: seeded cases, shrink by
/// halving the length while the property still fails, replayable report.
std::optional<std::string> find_stream_failure(StreamKind kind,
                                               std::size_t cases,
                                               const StreamProperty& prop) {
  for (u64 idx = 0; idx < cases; ++idx) {
    const u64 seed =
        proptest::case_seed(0xada97000ull + static_cast<u64>(kind), idx);
    std::size_t n = stream_default_n(kind);
    auto run = [&](std::size_t len) {
      return prop(make_stream(kind, len, seed), seed);
    };
    std::optional<std::string> failure = run(n);
    if (!failure) continue;
    while (n >= 8) {
      const std::optional<std::string> again = run(n / 2);
      if (!again) break;
      n /= 2;
      failure = again;
    }
    std::ostringstream out;
    out << "property failed: family=" << stream_kind_name(kind)
        << " case=" << idx << " seed=0x" << std::hex << seed << std::dec
        << " n=" << n << ": " << *failure;
    return out.str();
  }
  return std::nullopt;
}

/// Exact total codeword bits of `input` under `cb` — what
/// AdaptiveStats::total_code_bits must equal.
u64 exact_code_bits(const std::vector<u16>& input, const Codebook& cb) {
  u64 bits = 0;
  for (const u16 s : input) bits += cb.cw[s].len;
  return bits;
}

// ---------------------------------------------------------------------------

TEST(Adaptive, RoundTripsAcrossSeededStreamFamilies) {
  for (const StreamKind kind :
       {StreamKind::kBimodal, StreamKind::kNyx, StreamKind::kUniform,
        StreamKind::kSubChunk, StreamKind::kSingle}) {
    const auto failure = find_stream_failure(
        kind, 3,
        [](const std::vector<u16>& input,
           u64) -> std::optional<std::string> {
          const auto freq = histogram_serial<u16>(input, 1024);
          const Codebook cb = build_codebook_serial(freq);
          AdaptiveStats st32, st64;
          const EncodedStream e32 =
              encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st32);
          const EncodedStream e64 =
              encode_adaptive_simt<u16, 64>(input, cb, {}, nullptr, &st64);
          if (decode_stream<u16>(e32, cb, 2) != input)
            return "width-32 round trip mismatch";
          if (decode_stream<u16>(e64, cb, 2) != input)
            return "width-64 round trip mismatch";
          const u64 want = exact_code_bits(input, cb);
          if (st32.total_code_bits != want || st64.total_code_bits != want) {
            std::ostringstream o;
            o << "total_code_bits drifted from the exact lookup total: want "
              << want << " got32 " << st32.total_code_bits << " got64 "
              << st64.total_code_bits;
            return o.str();
          }
          // At equal reduce factors, wider cells can only reduce breaking.
          AdaptiveConfig pinned;
          pinned.min_reduce = pinned.max_reduce = 3;
          AdaptiveStats p32, p64;
          (void)encode_adaptive_simt<u16, 32>(input, cb, pinned, nullptr,
                                              &p32);
          (void)encode_adaptive_simt<u16, 64>(input, cb, pinned, nullptr,
                                              &p64);
          if (p64.breaking_symbols > p32.breaking_symbols)
            return "64-bit cells broke more groups than 32-bit at equal r";
          return std::nullopt;
        });
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(Adaptive, RoundTripsOnDriftingTraffic) {
  // The drifting-source families feed the service-layer lifecycle tests;
  // the encoder must round-trip every batch shape they emit, and the
  // lookup bit totals must stay exact (the manager's divergence estimate
  // is priced off them).
  for (const proptest::DriftKind kind :
       {proptest::DriftKind::kGradual, proptest::DriftKind::kAbrupt,
        proptest::DriftKind::kPeriodic}) {
    proptest::DriftSpec spec;
    spec.batches = 6;
    spec.log2_batch_symbols = 12;
    const auto failure = proptest::find_drift_failure(
        kind, 2,
        [](const proptest::DriftSource& src, const proptest::DriftCaseId&)
            -> std::optional<std::string> {
          for (std::size_t t = 0; t < src.spec().batches; t += 2) {
            const std::vector<u16> input = src.batch<u16>(t);
            const auto freq =
                histogram_serial<u16>(input, src.spec().nbins);
            const Codebook cb = build_codebook_serial(freq);
            AdaptiveStats st;
            const EncodedStream enc =
                encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st);
            if (decode_stream<u16>(enc, cb, 2) != input)
              return "drift batch round trip mismatch";
            if (st.total_code_bits != exact_code_bits(input, cb))
              return "total_code_bits wrong on drift batch";
          }
          return std::nullopt;
        },
        spec);
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(Adaptive, ReducesBreakingOnBimodalData) {
  const auto input =
      bimodal_stream(400000, proptest::case_seed(0xada9b10dull, 0));
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const double avg = average_bitwidth(cb, freq);

  // Fixed r from the global average (what Fig. 3 prescribes).
  ReduceShuffleStats fixed_stats;
  const u32 r = decide_reduce_factor(avg, 10);
  const auto fixed = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, r}, nullptr, &fixed_stats);

  AdaptiveStats ad_stats;
  const auto adaptive =
      encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &ad_stats);

  EXPECT_EQ(decode_stream<u16>(fixed, cb, 2), input);
  EXPECT_EQ(decode_stream<u16>(adaptive, cb, 2), input);
  EXPECT_LT(ad_stats.breaking_symbols, fixed_stats.breaking_symbols / 3)
      << "adaptive should all but eliminate breaking on bimodal data "
      << "(fixed: " << fixed_stats.breaking_symbols
      << ", adaptive: " << ad_stats.breaking_symbols << ")";
}

TEST(Adaptive, ChunkFactorsTrackLocalDensity) {
  const auto input =
      bimodal_stream(300000, proptest::case_seed(0xada9c43cull, 0));
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  AdaptiveStats st;
  const auto enc = encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st);
  ASSERT_EQ(enc.chunk_reduce.size(), enc.chunks());
  // The stream has both calm and dense regions, so more than one factor
  // must be in play.
  std::size_t distinct = 0;
  for (std::size_t r = 0; r < st.r_histogram.size(); ++r) {
    if (st.r_histogram[r] > 0) ++distinct;
  }
  EXPECT_GE(distinct, 2u);
  u64 total = 0;
  for (u64 h : st.r_histogram) total += h;
  EXPECT_EQ(total, enc.chunks());
}

TEST(Adaptive, HonorsConfigBounds) {
  const auto input =
      bimodal_stream(50000, proptest::case_seed(0xada9d21aull, 0));
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  AdaptiveConfig cfg;
  cfg.min_reduce = 2;
  cfg.max_reduce = 3;
  const auto enc = encode_adaptive_simt<u16, 32>(input, cb, cfg);
  for (const u8 r : enc.chunk_reduce) {
    EXPECT_GE(r, 2);
    EXPECT_LE(r, 3);
  }
  EXPECT_EQ(decode_stream<u16>(enc, cb, 1), input);
}

TEST(Adaptive, RejectsBadConfig) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  const std::vector<u16> input = {0, 1};
  AdaptiveConfig bad;
  bad.min_reduce = 0;
  auto encode32 = [&](const AdaptiveConfig& c) {
    (void)encode_adaptive_simt<u16, 32>(input, cb, c);
  };
  EXPECT_THROW(encode32(bad), std::invalid_argument);
  bad = {};
  bad.max_reduce = 10;  // >= magnitude
  EXPECT_THROW(encode32(bad), std::invalid_argument);
}

TEST(Adaptive, FormatRoundTripsPerChunkFactors) {
  const auto bytes8 = data::generate_text(200000, 31);
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  PipelineReport rep;
  const auto blob = compress<u8>(bytes8, cfg, &rep);
  ASSERT_FALSE(blob.stream.chunk_reduce.empty());
  const auto serialized = serialize(blob);
  const auto blob2 = deserialize<u8>(serialized);
  EXPECT_EQ(blob2.stream.chunk_reduce, blob.stream.chunk_reduce);
  EXPECT_EQ(decompress(blob2, 2), bytes8);
}

TEST(Adaptive, FormatRejectsCorruptChunkReduce) {
  const auto bytes8 = data::generate_text(50000, 33);
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  auto serialized = serialize(compress<u8>(bytes8, cfg));
  // The per-chunk array sits right after chunk_bits; find a byte holding a
  // small reduce factor and zero it (0 is invalid).
  bool mutated = false;
  for (std::size_t i = serialized.size() - 1; i > serialized.size() - 4000;
       --i) {
    if (serialized[i] >= 1 && serialized[i] <= 6) {
      serialized[i] = 0;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  // Either the loader rejects it outright, or the mutation hit payload and
  // decode must still not crash (it may throw).
  try {
    const auto blob = deserialize<u8>(serialized);
    (void)decompress(blob, 1);
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(Adaptive, MatchesFixedWhenUniform) {
  // On statistically uniform data every chunk picks the same factor, and
  // the payload matches the fixed-r encoder bit for bit.
  const auto input = data::generate_nyx_quant(200000, 41);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  AdaptiveStats st;
  const auto adaptive =
      encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st);
  u32 common = 0;
  std::size_t kinds = 0;
  for (std::size_t r = 0; r < st.r_histogram.size(); ++r) {
    if (st.r_histogram[r] > 0) {
      common = static_cast<u32>(r);
      ++kinds;
    }
  }
  if (kinds == 1) {
    const auto fixed = encode_reduceshuffle_simt<u16>(
        input, cb, ReduceShuffleConfig{10, common}, nullptr, nullptr);
    EXPECT_EQ(adaptive.payload, fixed.payload);
    EXPECT_EQ(adaptive.chunk_bits, fixed.chunk_bits);
  }
}

}  // namespace
}  // namespace parhuff
