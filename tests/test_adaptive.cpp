// Adaptive per-chunk reduce factors (§VII future-work extension) and the
// 64-bit cell variant: round trips, breaking reduction on locally-varying
// data, per-chunk factor plausibility, format round trip.
#include <gtest/gtest.h>

#include <vector>

#include "core/decode.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/entropy.hpp"
#include "core/format.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "core/tree.hpp"
#include "data/datasets.hpp"
#include "data/quant.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

/// Bimodal stream: long stretches of near-constant symbols (1-2 bit codes)
/// interleaved with dense high-entropy bursts — the worst case for a
/// single global reduce factor.
std::vector<u16> bimodal_stream(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u16> v;
  v.reserve(n);
  while (v.size() < n) {
    const std::size_t calm = 2000 + rng.below(4000);
    for (std::size_t i = 0; i < calm && v.size() < n; ++i) {
      v.push_back(static_cast<u16>(rng.below(3)));
    }
    const std::size_t burst = 500 + rng.below(2000);
    for (std::size_t i = 0; i < burst && v.size() < n; ++i) {
      v.push_back(static_cast<u16>(3 + rng.below(1021)));
    }
  }
  return v;
}

class AdaptiveRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveRoundTrip, AllWidthsAllData) {
  const int kind = GetParam();
  std::vector<u16> input;
  switch (kind) {
    case 0: input = bimodal_stream(120000, 3); break;
    case 1: input = data::generate_nyx_quant(120000, 3); break;
    case 2: {  // uniform high-entropy
      Xoshiro256 rng(9);
      input.resize(50000);
      for (auto& s : input) s = static_cast<u16>(rng.below(1024));
      break;
    }
    case 3: input = bimodal_stream(1023, 5); break;  // sub-chunk input
    default: input = {7}; break;                     // single symbol
  }
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);

  AdaptiveStats st32, st64;
  const EncodedStream e32 =
      encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st32);
  const EncodedStream e64 =
      encode_adaptive_simt<u16, 64>(input, cb, {}, nullptr, &st64);
  EXPECT_EQ(decode_stream<u16>(e32, cb, 2), input) << "width 32 kind " << kind;
  EXPECT_EQ(decode_stream<u16>(e64, cb, 2), input) << "width 64 kind " << kind;
  // At equal reduce factors, wider cells can only reduce breaking (with
  // free choice the 64-bit variant picks bigger groups, so compare pinned).
  AdaptiveConfig pinned;
  pinned.min_reduce = pinned.max_reduce = 3;
  AdaptiveStats p32, p64;
  (void)encode_adaptive_simt<u16, 32>(input, cb, pinned, nullptr, &p32);
  (void)encode_adaptive_simt<u16, 64>(input, cb, pinned, nullptr, &p64);
  EXPECT_LE(p64.breaking_symbols, p32.breaking_symbols);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AdaptiveRoundTrip, ::testing::Range(0, 5));

TEST(Adaptive, ReducesBreakingOnBimodalData) {
  const auto input = bimodal_stream(400000, 11);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const double avg = average_bitwidth(cb, freq);

  // Fixed r from the global average (what Fig. 3 prescribes).
  ReduceShuffleStats fixed_stats;
  const u32 r = decide_reduce_factor(avg, 10);
  const auto fixed = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, r}, nullptr, &fixed_stats);

  AdaptiveStats ad_stats;
  const auto adaptive =
      encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &ad_stats);

  EXPECT_EQ(decode_stream<u16>(fixed, cb, 2), input);
  EXPECT_EQ(decode_stream<u16>(adaptive, cb, 2), input);
  EXPECT_LT(ad_stats.breaking_symbols, fixed_stats.breaking_symbols / 3)
      << "adaptive should all but eliminate breaking on bimodal data "
      << "(fixed: " << fixed_stats.breaking_symbols
      << ", adaptive: " << ad_stats.breaking_symbols << ")";
}

TEST(Adaptive, ChunkFactorsTrackLocalDensity) {
  const auto input = bimodal_stream(300000, 17);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  AdaptiveStats st;
  const auto enc = encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st);
  ASSERT_EQ(enc.chunk_reduce.size(), enc.chunks());
  // The stream has both calm and dense regions, so more than one factor
  // must be in play.
  std::size_t distinct = 0;
  for (std::size_t r = 0; r < st.r_histogram.size(); ++r) {
    if (st.r_histogram[r] > 0) ++distinct;
  }
  EXPECT_GE(distinct, 2u);
  // Calm chunks (codes ~1.5 bits) should pick large r; dense chunks
  // (codes ~10 bits) small r.
  u64 total = 0;
  for (u64 h : st.r_histogram) total += h;
  EXPECT_EQ(total, enc.chunks());
}

TEST(Adaptive, HonorsConfigBounds) {
  const auto input = bimodal_stream(50000, 21);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  AdaptiveConfig cfg;
  cfg.min_reduce = 2;
  cfg.max_reduce = 3;
  const auto enc = encode_adaptive_simt<u16, 32>(input, cb, cfg);
  for (const u8 r : enc.chunk_reduce) {
    EXPECT_GE(r, 2);
    EXPECT_LE(r, 3);
  }
  EXPECT_EQ(decode_stream<u16>(enc, cb, 1), input);
}

TEST(Adaptive, RejectsBadConfig) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  const std::vector<u16> input = {0, 1};
  AdaptiveConfig bad;
  bad.min_reduce = 0;
  auto encode32 = [&](const AdaptiveConfig& c) {
    (void)encode_adaptive_simt<u16, 32>(input, cb, c);
  };
  EXPECT_THROW(encode32(bad), std::invalid_argument);
  bad = {};
  bad.max_reduce = 10;  // >= magnitude
  EXPECT_THROW(encode32(bad), std::invalid_argument);
}

TEST(Adaptive, FormatRoundTripsPerChunkFactors) {
  const auto bytes8 = data::generate_text(200000, 31);
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  PipelineReport rep;
  const auto blob = compress<u8>(bytes8, cfg, &rep);
  ASSERT_FALSE(blob.stream.chunk_reduce.empty());
  const auto serialized = serialize(blob);
  const auto blob2 = deserialize<u8>(serialized);
  EXPECT_EQ(blob2.stream.chunk_reduce, blob.stream.chunk_reduce);
  EXPECT_EQ(decompress(blob2, 2), bytes8);
}

TEST(Adaptive, FormatRejectsCorruptChunkReduce) {
  const auto bytes8 = data::generate_text(50000, 33);
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  auto serialized = serialize(compress<u8>(bytes8, cfg));
  // The per-chunk array sits right after chunk_bits; find a byte holding a
  // small reduce factor and zero it (0 is invalid).
  bool mutated = false;
  for (std::size_t i = serialized.size() - 1; i > serialized.size() - 4000;
       --i) {
    if (serialized[i] >= 1 && serialized[i] <= 6) {
      serialized[i] = 0;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  // Either the loader rejects it outright, or the mutation hit payload and
  // decode must still not crash (it may throw).
  try {
    const auto blob = deserialize<u8>(serialized);
    (void)decompress(blob, 1);
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(Adaptive, MatchesFixedWhenUniform) {
  // On statistically uniform data every chunk picks the same factor, and
  // the payload matches the fixed-r encoder bit for bit.
  const auto input = data::generate_nyx_quant(200000, 41);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  AdaptiveStats st;
  const auto adaptive =
      encode_adaptive_simt<u16, 32>(input, cb, {}, nullptr, &st);
  u32 common = 0;
  std::size_t kinds = 0;
  for (std::size_t r = 0; r < st.r_histogram.size(); ++r) {
    if (st.r_histogram[r] > 0) {
      common = static_cast<u32>(r);
      ++kinds;
    }
  }
  if (kinds == 1) {
    const auto fixed = encode_reduceshuffle_simt<u16>(
        input, cb, ReduceShuffleConfig{10, common}, nullptr, nullptr);
    EXPECT_EQ(adaptive.payload, fixed.payload);
    EXPECT_EQ(adaptive.chunk_bits, fixed.chunk_bits);
  }
}

}  // namespace
}  // namespace parhuff
