// Unit tests for the MSB-first bitstream primitives every encoder builds on.
#include <gtest/gtest.h>

#include <vector>

#include "core/bitstream.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

TEST(BitWriter, EmptyProducesNothing) {
  BitWriter bw;
  EXPECT_EQ(bw.bits(), 0u);
  EXPECT_TRUE(bw.finish().empty());
}

TEST(BitWriter, SingleBitLandsInMsb) {
  BitWriter bw;
  bw.put(1, 1);
  auto words = bw.finish();
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x80000000u);
}

TEST(BitWriter, ZeroLengthPutIsNoop) {
  BitWriter bw;
  bw.put(0xFFFF, 0);
  EXPECT_EQ(bw.bits(), 0u);
}

TEST(BitWriter, PacksAcrossWordBoundary) {
  BitWriter bw;
  bw.put(0x3FFFFFFF, 30);  // 30 ones
  bw.put(0x0, 2);
  bw.put(0xF, 4);          // crosses into word 2
  auto words = bw.finish();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], 0xFFFFFFFCu);
  EXPECT_EQ(words[1], 0xF0000000u);
  // bits() counts before finish resets
}

TEST(BitWriter, MasksHighBitsOfValue) {
  BitWriter bw;
  bw.put(0xFF, 4);  // only low 4 bits (0xF) should be written
  auto words = bw.finish();
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0xF0000000u);
}

TEST(BitRoundTrip, RandomPieces) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter bw;
    std::vector<std::pair<u64, unsigned>> pieces;
    for (int i = 0; i < 200; ++i) {
      const unsigned len = 1 + static_cast<unsigned>(rng.below(57));
      const u64 v = rng.next() & ((u64{1} << len) - 1);
      pieces.emplace_back(v, len);
      bw.put(v, len);
    }
    const u64 total = bw.bits();
    auto words = bw.finish();
    BitReader br(words, total);
    for (const auto& [v, len] : pieces) {
      EXPECT_EQ(br.take(len), v);
    }
    EXPECT_TRUE(br.exhausted());
  }
}

TEST(BitReader, SeekRepositions) {
  BitWriter bw;
  bw.put(0b1010, 4);
  bw.put(0b1100, 4);
  auto words = bw.finish();
  BitReader br(words, 8);
  EXPECT_EQ(br.take(4), 0b1010u);
  br.seek(4);
  EXPECT_EQ(br.take(4), 0b1100u);
  br.seek(0);
  EXPECT_EQ(br.take(8), 0b10101100u);
}

TEST(WordsForBits, Boundaries) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(32), 1u);
  EXPECT_EQ(words_for_bits(33), 2u);
  EXPECT_EQ(words_for_bits(64), 2u);
}

TEST(AppendBits, AlignedCopy) {
  std::vector<word_t> dst(4, 0);
  const std::vector<word_t> src = {0xDEADBEEF, 0xCAFE0000};
  append_bits(dst.data(), 0, src.data(), 48);
  EXPECT_EQ(dst[0], 0xDEADBEEFu);
  EXPECT_EQ(dst[1], 0xCAFE0000u);
}

TEST(AppendBits, UnalignedResidualFill) {
  // dst holds 4 bits (0b1111); append 8 bits 0xAB.
  std::vector<word_t> dst(2, 0);
  dst[0] = 0xF0000000u;
  const std::vector<word_t> src = {0xAB000000u};
  append_bits(dst.data(), 4, src.data(), 8);
  EXPECT_EQ(dst[0], 0xFAB00000u);
  EXPECT_EQ(dst[1], 0u);
}

TEST(AppendBits, SpillsIntoNextCell) {
  // dst holds 28 bits of ones; append 8 bits 0xAB: 4 bits fill the
  // residual, 4 spill.
  std::vector<word_t> dst(2, 0);
  dst[0] = 0xFFFFFFF0u;
  const std::vector<word_t> src = {0xAB000000u};
  append_bits(dst.data(), 28, src.data(), 8);
  EXPECT_EQ(dst[0], 0xFFFFFFFAu);
  EXPECT_EQ(dst[1], 0xB0000000u);
}

TEST(AppendBits, EquivalentToBitWriterConcatenation) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Build two random bit strings with the writer, concatenate with
    // append_bits, compare against writing both into one stream.
    const unsigned la = 1 + static_cast<unsigned>(rng.below(120));
    const unsigned lb = 1 + static_cast<unsigned>(rng.below(120));
    BitWriter wa, wb, wall;
    u64 bits_a = 0, bits_b = 0;
    for (unsigned done = 0; done < la;) {
      const unsigned len = std::min(la - done, 1 + static_cast<unsigned>(
                                                       rng.below(30)));
      const u64 v = rng.next() & ((u64{1} << len) - 1);
      wa.put(v, len);
      wall.put(v, len);
      done += len;
      bits_a += len;
    }
    for (unsigned done = 0; done < lb;) {
      const unsigned len = std::min(lb - done, 1 + static_cast<unsigned>(
                                                       rng.below(30)));
      const u64 v = rng.next() & ((u64{1} << len) - 1);
      wb.put(v, len);
      wall.put(v, len);
      done += len;
      bits_b += len;
    }
    auto a = wa.finish();
    auto b = wb.finish();
    auto expect = wall.finish();
    std::vector<word_t> dst(words_for_bits(bits_a + bits_b) + 1, 0);
    std::copy(a.begin(), a.end(), dst.begin());
    append_bits(dst.data(), bits_a, b.data(), bits_b);
    for (std::size_t w = 0; w < words_for_bits(bits_a + bits_b); ++w) {
      ASSERT_EQ(dst[w], expect[w]) << "trial " << trial << " word " << w;
    }
  }
}

// --- Hardened bounds (enforced in release builds, not assert-only). ----------

TEST(BitReaderBounds, ConstructorRejectsBitCountBeyondSpan) {
  const std::vector<word_t> words = {0xDEADBEEFu, 0x12345678u};
  EXPECT_NO_THROW(BitReader(words, 64));
  EXPECT_THROW(BitReader(words, 65), std::out_of_range);
  // The words_for_bits() wrap route: a near-2^64 bit count maps to 0
  // cells, so an empty span must not be able to claim any bits.
  EXPECT_THROW(BitReader({}, ~u64{0} - 14), std::out_of_range);
  EXPECT_THROW(BitReader({}, 1), std::out_of_range);
  EXPECT_NO_THROW(BitReader({}, 0));
}

TEST(BitReaderBounds, BitPastEndThrowsInsteadOfReadingOob) {
  const std::vector<word_t> words = {0x80000000u};
  BitReader br(words, 3);
  EXPECT_EQ(br.bit(), 1u);
  EXPECT_EQ(br.bit(), 0u);
  EXPECT_EQ(br.bit(), 0u);
  EXPECT_TRUE(br.exhausted());
  EXPECT_THROW((void)br.bit(), std::out_of_range);
}

TEST(BitReaderBounds, SkipAndSeekPastEndThrow) {
  const std::vector<word_t> words = {0, 0};
  BitReader br(words, 40);
  EXPECT_NO_THROW(br.skip(40));
  EXPECT_THROW(br.skip(1), std::out_of_range);
  EXPECT_NO_THROW(br.seek(40));
  EXPECT_THROW(br.seek(41), std::out_of_range);
  // skip() with a huge count must not wrap pos_ + n.
  br.seek(8);
  EXPECT_THROW(br.skip(~u64{0} - 4), std::out_of_range);
  EXPECT_EQ(br.position(), 8u);  // failed skip leaves the cursor alone
}

TEST(BitReaderBounds, PeekStaysSafeAtTail) {
  const std::vector<word_t> words = {0xFFFFFFFFu};
  BitReader br(words, 4);
  br.skip(2);
  // Past-the-end bits read as zero; no throw, no OOB.
  EXPECT_EQ(br.peek(8), 0xC0u);
  EXPECT_EQ(br.position(), 2u);
}

}  // namespace
}  // namespace parhuff
