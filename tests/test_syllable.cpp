// Syllable symbolization substrate (§II-A n-gram text scenario).
#include <gtest/gtest.h>

#include "core/entropy.hpp"
#include "core/histogram.hpp"
#include "data/syllable.hpp"

namespace parhuff {
namespace {

TEST(Syllable, GeneratorDeterministicAndSized) {
  const auto a = data::generate_agglutinative(100000, 4);
  const auto b = data::generate_agglutinative(100000, 4);
  const auto c = data::generate_agglutinative(100000, 5);
  EXPECT_EQ(a.size(), 100000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Syllable, RoundTrip) {
  const auto text = data::generate_agglutinative(500000, 9);
  const auto s = data::syllabify(text);
  EXPECT_EQ(data::unsyllabify(s), text);
}

TEST(Syllable, RoundTripArbitraryBytes) {
  // Syllabification must be lossless on any input, not just clean text.
  std::vector<u8> weird;
  for (int i = 0; i < 2000; ++i) {
    weird.push_back(static_cast<u8>((i * 37) & 0xFF));
  }
  const auto s = data::syllabify(weird);
  EXPECT_EQ(data::unsyllabify(s), weird);
}

TEST(Syllable, EmptyInput) {
  const auto s = data::syllabify({});
  EXPECT_TRUE(s.symbols.empty());
  EXPECT_TRUE(data::unsyllabify(s).empty());
}

TEST(Syllable, DictionaryStaysSmallOnAgglutinativeText) {
  const auto text = data::generate_agglutinative(2 * MiB, 11);
  const auto s = data::syllabify(text);
  // A real syllable inventory: hundreds to a few thousand entries, not
  // tens of thousands — that's what makes the scheme viable.
  EXPECT_GT(s.distinct, 50u);
  EXPECT_LT(s.distinct, 8192u);
  // Compression leverage: symbols per byte well under 1.
  EXPECT_LT(static_cast<double>(s.symbols.size()),
            static_cast<double>(text.size()) * 0.6);
}

TEST(Syllable, SymbolEntropyBeatsScaledByteEntropy) {
  const auto text = data::generate_agglutinative(2 * MiB, 13);
  const auto s = data::syllabify(text);
  const auto bh = histogram_serial<u8>(text, 256);
  std::vector<u64> sh(s.nbins, 0);
  for (u16 sym : s.symbols) ++sh[sym];
  // Per-original-byte cost: syllable entropy spread over the syllable's
  // bytes must beat byte entropy (the whole point of §II-A).
  const double bytes_per_sym = static_cast<double>(text.size()) /
                               static_cast<double>(s.symbols.size());
  EXPECT_LT(shannon_entropy(sh) / bytes_per_sym, shannon_entropy(bh));
}

}  // namespace
}  // namespace parhuff
