// Cross-process RPC front-end: wire-protocol round-trips and rejection
// cases, loopback transport semantics (clean vs mid-frame EOF), client
// reconnect over the injected clock, deterministic cancel/deadline
// propagation through a frozen VirtualClock, the unix-socket end-to-end
// mixed workload (64+ concurrent requests from 4 client threads), and the
// loopback fault-storm that arms every rpc.* site and proves the
// resolve-always invariant plus the response-counter balance.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "data/quant.hpp"
#include "obs/metrics.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "rpc/transport_inmem.hpp"
#include "svc/deadline.hpp"
#include "util/clock.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

using rpc::ClientConfig;
using rpc::Frame;
using rpc::Header;
using rpc::Kind;
using rpc::LoopbackHub;
using rpc::Op;
using rpc::ProtocolError;
using rpc::RpcCall;
using rpc::RpcClient;
using rpc::RpcError;
using rpc::RpcOptions;
using rpc::RpcServer;
using rpc::ServerConfig;
using rpc::Status;
using rpc::TransportError;
using util::Clock;
using util::FaultInjector;
using util::ScopedFaults;
using util::VirtualClock;

std::vector<u8> ramp_data(std::size_t n, u64 seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/parhuff_rpc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// --- Protocol. ---------------------------------------------------------------

TEST(RpcProtocol, HeaderRoundTripsEveryField) {
  Header h;
  h.kind = Kind::kResponse;
  h.op = Op::kDecompress;
  h.sym_width = 2;
  h.request_id = 0x0123456789abcdefull;
  h.priority = 2;
  h.status = Status::kQueueFull;
  h.payload_len = 12345;
  h.deadline_micros = 987654321;
  const auto bytes = rpc::encode_header(h);
  const Header d =
      rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes));
  EXPECT_EQ(d.kind, h.kind);
  EXPECT_EQ(d.op, h.op);
  EXPECT_EQ(d.sym_width, h.sym_width);
  EXPECT_EQ(d.request_id, h.request_id);
  EXPECT_EQ(d.priority, h.priority);
  EXPECT_EQ(d.status, h.status);
  EXPECT_EQ(d.payload_len, h.payload_len);
  EXPECT_EQ(d.deadline_micros, h.deadline_micros);
}

TEST(RpcProtocol, FrameRoundTripsAndDerivesPayloadLen) {
  Frame f;
  f.h.op = Op::kCompress;
  f.h.request_id = 42;
  f.payload = {1, 2, 3, 4, 5};
  const std::vector<u8> bytes = rpc::encode_frame(f);
  ASSERT_EQ(bytes.size(), rpc::kHeaderBytes + 5);
  std::array<u8, rpc::kHeaderBytes> hb;
  std::memcpy(hb.data(), bytes.data(), hb.size());
  const Header h =
      rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(hb));
  EXPECT_EQ(h.payload_len, 5u);
  EXPECT_TRUE(std::equal(f.payload.begin(), f.payload.end(),
                         bytes.begin() + rpc::kHeaderBytes));
}

TEST(RpcProtocol, EncodeRejectsOversizedPayload) {
  Frame f;
  f.payload.resize(17);
  EXPECT_THROW((void)rpc::encode_frame(f, 16), std::length_error);
  EXPECT_NO_THROW((void)rpc::encode_frame(f, 17));
}

TEST(RpcProtocol, DecodeRejectsBadMagicWithoutResponding) {
  auto bytes = rpc::encode_header(Header{});
  bytes[0] ^= 0xFF;
  try {
    (void)rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes));
    FAIL() << "bad magic must throw";
  } catch (const ProtocolError& e) {
    EXPECT_FALSE(e.can_respond());  // stream alignment unknowable
  }
}

TEST(RpcProtocol, DecodeRejectsBadVersionButCanRespond) {
  Header h;
  h.request_id = 77;
  auto bytes = rpc::encode_header(h);
  bytes[4] = rpc::kVersion + 1;
  try {
    (void)rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes));
    FAIL() << "bad version must throw";
  } catch (const ProtocolError& e) {
    EXPECT_TRUE(e.can_respond());
    EXPECT_EQ(e.status(), Status::kUnsupportedVersion);
    EXPECT_EQ(e.request_id(), 77u);  // id parsed before the version gate
  }
}

TEST(RpcProtocol, DecodeRejectsBadKindOpStatusAndOversizedLen) {
  const auto corrupt = [](std::size_t off, u8 value) {
    auto bytes = rpc::encode_header(Header{});
    bytes[off] = value;
    return bytes;
  };
  for (const auto& bytes :
       {corrupt(5, 9) /*kind*/, corrupt(6, 0) /*op low*/,
        corrupt(6, 14) /*op past kLossyDecompress*/,
        corrupt(17, 200) /*status*/}) {
    EXPECT_THROW(
        (void)rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes)),
        ProtocolError);
  }
  Header big;
  big.payload_len = 100;
  const auto bytes = rpc::encode_header(big);
  EXPECT_THROW((void)rpc::decode_header(
                   std::span<const u8, rpc::kHeaderBytes>(bytes), 99),
               ProtocolError);
  EXPECT_NO_THROW((void)rpc::decode_header(
      std::span<const u8, rpc::kHeaderBytes>(bytes), 100));
}

TEST(RpcProtocol, V1FramesAreStillAcceptedByV2Decoders) {
  // The v2 bump widened the accepted range to [kMinVersion, kVersion]; a
  // v1 peer's frames must keep decoding unchanged (compat matrix in
  // docs/router.md).
  Header h;
  h.request_id = 11;
  auto bytes = rpc::encode_header(h);
  bytes[4] = rpc::kMinVersion;
  const Header d =
      rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes));
  EXPECT_EQ(d.request_id, 11u);
}

TEST(RpcProtocol, HealthInfoRoundTripsAndIgnoresTrailingBytes) {
  rpc::HealthInfo info;
  info.accepting = false;
  info.queue_depth = 12;
  info.queue_capacity = 512;
  info.connections = 3;
  info.max_connections = 8;
  auto bytes = rpc::encode_health_info(info);
  ASSERT_EQ(bytes.size(), rpc::kHealthInfoBytes);
  bytes.push_back(0xEE);  // a future field: v2 readers must not care
  const rpc::HealthInfo d = rpc::decode_health_info(bytes);
  EXPECT_EQ(d.accepting, info.accepting);
  EXPECT_EQ(d.queue_depth, info.queue_depth);
  EXPECT_EQ(d.queue_capacity, info.queue_capacity);
  EXPECT_EQ(d.connections, info.connections);
  EXPECT_EQ(d.max_connections, info.max_connections);
}

TEST(RpcProtocol, HealthInfoRejectsShortPayloadAndZeroVersion) {
  const auto bytes = rpc::encode_health_info(rpc::HealthInfo{});
  EXPECT_THROW((void)rpc::decode_health_info(
                   std::span<const u8>(bytes.data(), bytes.size() - 1)),
               ProtocolError);
  auto zeroed = bytes;
  zeroed[0] = zeroed[1] = zeroed[2] = zeroed[3] = 0;  // info_version = 0
  EXPECT_THROW((void)rpc::decode_health_info(zeroed), ProtocolError);
}

TEST(RpcProtocol, ReservedBytesAreIgnored) {
  auto bytes = rpc::encode_header(Header{});
  bytes[18] = 0xAA;  // future extensions write here; v1 must not care
  bytes[19] = 0x55;
  EXPECT_NO_THROW(
      (void)rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes)));
}

TEST(RpcProtocol, ResponseBoundAddsSlackAndSaturates) {
  EXPECT_EQ(rpc::response_payload_bound(0), 1u << 20);
  EXPECT_EQ(rpc::response_payload_bound(rpc::kMaxPayloadBytes),
            (64u << 20) + (1u << 20));
  EXPECT_EQ(rpc::response_payload_bound(0xFFFFFFFFu), 0xFFFFFFFFu);
}

// --- Loopback transport. -----------------------------------------------------

TEST(RpcLoopback, BytesCrossAndCleanEofIsFalse) {
  LoopbackHub hub;
  auto listener = hub.listener();
  auto client = hub.connect();
  auto server = listener->accept();
  ASSERT_NE(server, nullptr);

  const std::vector<u8> msg = {10, 20, 30};
  client->write_all(msg.data(), msg.size());
  std::vector<u8> got(3);
  EXPECT_TRUE(server->read_exact(got.data(), got.size()));
  EXPECT_EQ(got, msg);

  client->shutdown();
  EXPECT_FALSE(server->read_exact(got.data(), 1));  // clean EOF, no bytes
}

TEST(RpcLoopback, MidFrameEofThrowsTransportError) {
  LoopbackHub hub;
  auto listener = hub.listener();
  auto client = hub.connect();
  auto server = listener->accept();
  ASSERT_NE(server, nullptr);

  const u8 half = 0x5A;
  client->write_all(&half, 1);
  client->shutdown();
  std::vector<u8> want(2);  // expecting 2, only 1 arrives before EOF
  EXPECT_THROW((void)server->read_exact(want.data(), want.size()),
               TransportError);
  EXPECT_THROW(server->write_all(&half, 1), TransportError);
}

TEST(RpcLoopback, ClosedHubRefusesConnectAndAcceptReturnsNull) {
  LoopbackHub hub;
  auto listener = hub.listener();
  hub.close();
  EXPECT_THROW((void)hub.connect(), TransportError);
  EXPECT_EQ(listener->accept(), nullptr);
}

// --- Client: typed results, reconnect, cancel, deadline. ---------------------

TEST(RpcClientTest, CompressDecompressRoundTripOnLoopback) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const auto data = ramp_data(20000);
  RpcCall comp = cli.compress(std::span<const u8>(data));
  const std::vector<u8> container = comp.result.get();
  EXPECT_FALSE(container.empty());
  EXPECT_GT(comp.id, 0u);

  RpcCall decomp = cli.decompress(std::span<const u8>(container));
  EXPECT_EQ(decomp.result.get(), data);
}

TEST(RpcClientTest, SixteenBitSymbolsRoundTrip) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  Xoshiro256 rng(11);
  std::vector<u16> data(8192);
  for (auto& s : data) s = static_cast<u16>(rng.below(40000));
  RpcCall comp = cli.compress_data<u16>(std::span<const u16>(data));
  const std::vector<u8> container = comp.result.get();

  RpcCall decomp = cli.decompress(std::span<const u8>(container), 2);
  const std::vector<u8> raw = decomp.result.get();
  ASSERT_EQ(raw.size(), data.size() * 2);
  std::vector<u16> out(data.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  EXPECT_EQ(out, data);
}

TEST(RpcClientTest, StatsReturnsMetricsSchemaDocument) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });
  (void)cli.compress(std::span<const u8>(ramp_data(1000))).result.get();
  const std::string text = cli.stats().get();
  EXPECT_NE(text.find("parhuff-metrics-v1"), std::string::npos);
  EXPECT_NE(text.find("rpc.requests_received"), std::string::npos);
}

TEST(RpcClientTest, ReconnectRetriesWithBackoffOnTheInjectedClock) {
  LoopbackHub hub;
  RpcServer server(hub.listener());

  // The first three dials fail; the virtual clock absorbs the backoff so
  // the whole retry schedule runs in zero real time.
  VirtualClock vc;
  std::atomic<int> attempts{0};
  ClientConfig cfg;
  cfg.clock = &vc;
  cfg.connect_attempts = 5;
  RpcClient cli(
      [&]() -> std::unique_ptr<rpc::Connection> {
        if (attempts.fetch_add(1) < 3) {
          throw TransportError("test: dial refused");
        }
        return hub.connect();
      },
      cfg);

  const auto data = ramp_data(2000);
  EXPECT_EQ(
      cli.decompress(
             std::span<const u8>(
                 cli.compress(std::span<const u8>(data)).result.get()))
          .result.get(),
      data);
  EXPECT_EQ(attempts.load(), 4);  // 3 failures + the success
}

TEST(RpcClientTest, ConnectBudgetExhaustionFailsTyped) {
  VirtualClock vc;
  ClientConfig cfg;
  cfg.clock = &vc;
  cfg.connect_attempts = 3;
  RpcClient cli(
      []() -> std::unique_ptr<rpc::Connection> {
        throw TransportError("test: nothing listening");
      },
      cfg);
  RpcCall call = cli.compress(std::span<const u8>(ramp_data(100)));
  EXPECT_THROW(call.result.get(), TransportError);
}

TEST(RpcClientTest, ServerRestartIsSurvivedByRedialing) {
  const std::string path = unique_socket_path("restart");
  auto server1 = std::make_unique<RpcServer>(rpc::listen_unix(path));
  RpcClient cli([&] { return rpc::connect_unix(path); });

  const auto data = ramp_data(4000);
  EXPECT_FALSE(
      cli.compress(std::span<const u8>(data)).result.get().empty());

  server1.reset();  // connection dies with the server
  auto server2 = std::make_unique<RpcServer>(rpc::listen_unix(path));

  // The request that observes the stale connection fails typed; a redial
  // lands on the new server within a couple of attempts.
  bool ok = false;
  for (int i = 0; i < 10 && !ok; ++i) {
    try {
      ok = !cli.compress(std::span<const u8>(data)).result.get().empty();
    } catch (const TransportError&) {
    }
  }
  EXPECT_TRUE(ok);
  ::unlink(path.c_str());
}

TEST(RpcClientTest, ServerDeathMidStreamSweepsEveryPendingFuture) {
  // Several requests park behind a frozen batch window; the server then
  // dies under them. The client's generation sweep must resolve every
  // parked future — no hangs — and a redial after restart must succeed.
  VirtualClock vc;
  auto hub = std::make_shared<LoopbackHub>();
  std::mutex hub_mu;
  ServerConfig sc;
  sc.service.clock = &vc;
  sc.service.workers = 1;
  sc.service.batch_window_seconds = 60.0;
  sc.service.batch_max_requests = 32;
  auto server = std::make_unique<RpcServer>(hub->listener(), sc);
  RpcClient cli([&] {
    std::shared_ptr<LoopbackHub> h;
    {
      std::lock_guard<std::mutex> lock(hub_mu);
      h = hub;
    }
    return h->connect();
  });

  const auto data = ramp_data(8000);
  std::vector<RpcCall> calls;
  for (int i = 0; i < 6; ++i) {
    calls.push_back(cli.compress(std::span<const u8>(data)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // in flight

  // Restart mid-stream: close the hub first so redials fail fast, then
  // tear the server down under the parked requests. The teardown runs on
  // a helper thread because it drains writer slots that block on the
  // frozen batch window — the clock advance below is what releases them;
  // the client-side sweep must NOT need it (connections are shut at the
  // start of stop(), before the drain).
  hub->close();
  std::thread teardown([&] { server.reset(); });
  int resolved = 0, transport = 0;
  for (auto& c : calls) {
    try {
      (void)c.result.get();
    } catch (const TransportError&) {
      ++transport;
    } catch (const std::exception&) {
    }
    ++resolved;  // value or typed error both count: nothing may hang
  }
  EXPECT_EQ(resolved, 6);
  EXPECT_GT(transport, 0) << "a mid-stream death must surface as transport";
  vc.advance_seconds(120.0);  // close the window; parked slots drain
  teardown.join();

  // New incarnation on a fresh hub: the same client redials into it.
  auto hub2 = std::make_shared<LoopbackHub>();
  {
    std::lock_guard<std::mutex> lock(hub_mu);
    hub = hub2;
  }
  ServerConfig sc2;
  sc2.service.workers = 1;
  sc2.service.batch_max_requests = 1;
  server = std::make_unique<RpcServer>(hub2->listener(), sc2);
  bool ok = false;
  for (int i = 0; i < 10 && !ok; ++i) {
    try {
      ok = !cli.compress(std::span<const u8>(data)).result.get().empty();
    } catch (const TransportError&) {
    }
  }
  EXPECT_TRUE(ok);
}

TEST(RpcHealthVerb, ServerAnswersInBandProbe) {
  LoopbackHub hub;
  ServerConfig sc;
  sc.max_connections = 3;
  sc.service.queue_capacity = 64;
  RpcServer server(hub.listener(), sc);
  RpcClient cli([&] { return hub.connect(); });

  const rpc::HealthInfo info = cli.health().get();
  EXPECT_TRUE(info.accepting);
  EXPECT_EQ(info.max_connections, 3u);
  EXPECT_EQ(info.queue_capacity, 2u * 64u);  // u8 + u16 service queues
  EXPECT_GE(info.connections, 1u);           // at least the probing client
}

TEST(RpcCancelFlow, CancelOfPendingCompressResolvesAsCancelled) {
  // The frozen virtual clock holds the service's batch window open, so the
  // compress parks server-side; the cancel frame (applied immediately in
  // the reader, not behind the response stream) kills it, and advancing
  // the clock lets the batch machinery observe the cancellation.
  VirtualClock vc;
  LoopbackHub hub;
  ServerConfig sc;
  sc.service.clock = &vc;
  sc.service.workers = 1;
  sc.service.batch_window_seconds = 60.0;
  sc.service.batch_max_requests = 8;
  RpcServer server(hub.listener(), sc);
  RpcClient cli([&] { return hub.connect(); });

  RpcCall call = cli.compress(std::span<const u8>(ramp_data(8000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Don't await the ack yet: it rides the in-order response stream BEHIND
  // the compress response, which can only resolve once the window closes.
  auto ack = cli.cancel(call.id);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // applied
  vc.advance_seconds(120.0);
  EXPECT_THROW(call.result.get(), svc::CancelledError);
  EXPECT_NO_THROW(ack.get());
}

TEST(RpcCancelFlow, RelativeDeadlineIsReanchoredOnTheServerClock) {
  VirtualClock vc;
  LoopbackHub hub;
  ServerConfig sc;
  sc.service.clock = &vc;
  sc.service.workers = 1;
  sc.service.batch_window_seconds = 60.0;
  sc.service.batch_max_requests = 8;
  RpcServer server(hub.listener(), sc);
  RpcClient cli([&] { return hub.connect(); });

  RpcOptions opts;
  opts.deadline_seconds = 0.5;  // virtual: expires during the held window
  RpcCall call = cli.compress(std::span<const u8>(ramp_data(8000)), 1, opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  vc.advance_seconds(120.0);  // passes the deadline and closes the window
  EXPECT_THROW(call.result.get(), svc::DeadlineExceeded);
}

TEST(RpcCancelFlow, CancelOfUnknownIdIsIdempotentNoOp) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });
  EXPECT_NO_THROW(cli.cancel(0xdeadbeefull).get());
  // The connection survives the no-op cancel.
  const auto data = ramp_data(1000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
}

// --- End-to-end: unix socket, concurrent mixed workload. ---------------------

TEST(RpcEndToEnd, UnixSocketMixedWorkloadEveryRequestResolves) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 received0 = reg.counter("rpc.requests_received");
  const u64 written0 = reg.counter("rpc.responses_written");
  const u64 dropped0 = reg.counter("rpc.responses_dropped");
  const u64 perr0 = reg.counter("rpc.protocol_error_responses");

  const std::string path = unique_socket_path("e2e");
  RpcServer server(rpc::listen_unix(path));
  RpcClient cli([&] { return rpc::connect_unix(path); });

  // Seed containers for the decompress half of the mix.
  const auto data8 = ramp_data(30000);
  const std::vector<u8> container8 =
      cli.compress(std::span<const u8>(data8)).result.get();
  Xoshiro256 rng16(3);
  std::vector<u16> data16(12000);
  for (auto& s : data16) s = static_cast<u16>(rng16.below(50000));
  const std::vector<u8> container16 =
      cli.compress_data<u16>(std::span<const u16>(data16)).result.get();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;  // 80 requests total
  std::atomic<int> ok{0}, cancelled{0}, deadline{0}, other{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int shape = (t * kPerThread + i) % 5;
        try {
          switch (shape) {
            case 0: {  // u8 compress with a generous deadline
              RpcOptions opts;
              opts.deadline_seconds = 30.0;
              auto call =
                  cli.compress(std::span<const u8>(data8), 1, opts);
              if (call.result.get().empty()) throw std::runtime_error("empty");
              break;
            }
            case 1: {  // u16 compress, high priority
              RpcOptions opts;
              opts.priority = svc::Priority::kHigh;
              auto call =
                  cli.compress_data<u16>(std::span<const u16>(data16), opts);
              if (call.result.get().empty()) throw std::runtime_error("empty");
              break;
            }
            case 2: {  // u8 decompress must round-trip
              auto call = cli.decompress(std::span<const u8>(container8));
              if (call.result.get() != data8) {
                throw std::runtime_error("mismatch");
              }
              break;
            }
            case 3: {  // compress raced by its own cancel
              auto call = cli.compress(std::span<const u8>(data8));
              auto ack = cli.cancel(call.id);
              bool was_cancelled = false;
              try {
                (void)call.result.get();  // either outcome is legal
              } catch (const svc::CancelledError&) {
                was_cancelled = true;
              }
              // Await the ack before anything else so no frame is still in
              // flight when the test quiesces the server.
              ack.get();
              if (was_cancelled) throw svc::CancelledError();
              break;
            }
            default: {  // decompress under an already-hopeless deadline
              RpcOptions opts;
              opts.deadline_seconds = 1e-6;
              auto call =
                  cli.decompress(std::span<const u8>(container16), 2, opts);
              (void)call.result.get();
              break;
            }
          }
          ok.fetch_add(1);
        } catch (const svc::CancelledError&) {
          cancelled.fetch_add(1);
        } catch (const svc::DeadlineExceeded&) {
          deadline.fetch_add(1);
        } catch (...) {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(ok + cancelled + deadline + other, kThreads * kPerThread);
  EXPECT_EQ(other.load(), 0);  // only typed cancel/deadline outcomes allowed
  EXPECT_GT(ok.load(), 0);

  // Quiesce first: the written-counter lands after the write syscall, so
  // a client can observe its response a beat before the count does.
  server.stop();
  // Every received request produced exactly one response-stream slot, and
  // every slot drained as written or dropped (clean run: none dropped).
  const u64 received = reg.counter("rpc.requests_received") - received0;
  const u64 written = reg.counter("rpc.responses_written") - written0;
  const u64 dropped = reg.counter("rpc.responses_dropped") - dropped0;
  const u64 perr = reg.counter("rpc.protocol_error_responses") - perr0;
  EXPECT_GE(received, static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(written + dropped, received + perr);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(perr, 0u);
  ::unlink(path.c_str());
}

TEST(RpcEndToEnd, LoopbackFaultStormEveryFutureStillResolves) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 received0 = reg.counter("rpc.requests_received");
  const u64 written0 = reg.counter("rpc.responses_written");
  const u64 dropped0 = reg.counter("rpc.responses_dropped");
  const u64 perr0 = reg.counter("rpc.protocol_error_responses");

  ScopedFaults scope(FaultInjector::global());
  scope.arm("rpc.server.accept", 0.05)
      .arm("rpc.server.read", 0.02)
      .arm("rpc.server.write", 0.02)
      .arm("rpc.client.connect", 0.05)
      .arm("rpc.client.send", 0.02)
      .arm("rpc.client.read", 0.02);

  VirtualClock vc;
  vc.auto_advance_every(256, Clock::dur(1e-3));
  LoopbackHub hub;
  ServerConfig sc;
  sc.service.clock = &vc;
  sc.service.workers = 2;
  sc.service.batch_max_requests = 1;  // dispatch immediately: the frozen
                                      // window must not park requests
  sc.max_connections = 2;
  RpcServer server(hub.listener(), sc);

  ClientConfig cc;
  cc.clock = &vc;
  cc.connect_attempts = 50;  // outlast the 5% connect faults
  RpcClient cli([&] { return hub.connect(); }, cc);

  const auto data = ramp_data(6000);
  std::vector<u8> container;
  for (int i = 0; i < 50 && container.empty(); ++i) {
    try {
      container = cli.compress(std::span<const u8>(data)).result.get();
    } catch (const std::exception&) {
    }
  }
  ASSERT_FALSE(container.empty()) << "no compress survived the storm seed";

  constexpr int kRequests = 64;
  int ok = 0, transport = 0, typed = 0, cancel_deadline = 0;
  for (int i = 0; i < kRequests; ++i) {
    try {
      if (i % 2 == 0) {
        auto call = cli.compress(std::span<const u8>(data));
        if (call.result.get().empty()) throw std::runtime_error("empty");
      } else {
        auto call = cli.decompress(std::span<const u8>(container));
        if (call.result.get() != data) throw std::runtime_error("mismatch");
      }
      ++ok;
    } catch (const TransportError&) {
      ++transport;  // connection died around this request
    } catch (const RpcError&) {
      ++typed;  // server answered with a typed error
    } catch (const svc::CancelledError&) {
      ++cancel_deadline;
    } catch (const svc::DeadlineExceeded&) {
      ++cancel_deadline;
    }
  }
  // The invariant is resolution, not success: every future produced a
  // value or a typed error, and the sum proves none hung.
  EXPECT_EQ(ok + transport + typed + cancel_deadline, kRequests);
  EXPECT_GT(ok, 0) << "storm killed every request — probabilities too hot";

  // Quiesce so late slots drain, then check the response-slot balance,
  // which must hold even with injected read/write failures.
  server.stop();
  const u64 received = reg.counter("rpc.requests_received") - received0;
  const u64 written = reg.counter("rpc.responses_written") - written0;
  const u64 dropped = reg.counter("rpc.responses_dropped") - dropped0;
  const u64 perr = reg.counter("rpc.protocol_error_responses") - perr0;
  EXPECT_EQ(written + dropped, received + perr);
}

TEST(RpcServerLifecycle, StopIsIdempotentAndRefusesNewWork) {
  LoopbackHub hub;
  auto server = std::make_unique<RpcServer>(hub.listener());
  RpcClient cli([&] { return hub.connect(); });
  const auto data = ramp_data(1000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
  server->stop();
  server->stop();  // idempotent
  EXPECT_EQ(server->connection_count(), 0u);
  // Requests after stop fail typed (the dead conn or a refused redial).
  RpcCall call = cli.compress(std::span<const u8>(data));
  EXPECT_THROW(call.result.get(), TransportError);
}

TEST(RpcServerLifecycle, ConnectionCapRejectsExcessConnections) {
  LoopbackHub hub;
  ServerConfig sc;
  sc.max_connections = 1;
  RpcServer server(hub.listener(), sc);
  RpcClient cli([&] { return hub.connect(); });
  const auto data = ramp_data(1000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
  // A second concurrent connection is shut down at accept; its requests
  // fail typed instead of hanging.
  auto& reg = obs::MetricsRegistry::global();
  const u64 rejected0 = reg.counter("rpc.connections_rejected");
  ClientConfig cc;
  cc.connect_attempts = 1;
  RpcClient second([&] { return hub.connect(); }, cc);
  RpcCall call = second.compress(std::span<const u8>(data));
  EXPECT_THROW(call.result.get(), TransportError);
  EXPECT_GE(reg.counter("rpc.connections_rejected"), rejected0 + 1);
}

// --- v4 lossy verbs. ---------------------------------------------------------

/// A smooth field the fused path compresses well (RLE engages at the
/// default rel bound once the field is large enough).
std::vector<float> smooth_field(data::Dims dims, u64 seed = 31) {
  std::vector<float> f(dims.total());
  Xoshiro256 rng(seed);
  const double fx = 0.05 + 0.001 * static_cast<double>(rng.below(100));
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++i) {
        f[i] = static_cast<float>(std::sin(static_cast<double>(x) * fx) *
                                      std::cos(static_cast<double>(y) * 0.07) +
                                  0.1 * static_cast<double>(z));
      }
    }
  }
  return f;
}

TEST(RpcLossyProtocol, RequestHeaderRoundTripsEveryField) {
  rpc::LossyRequestHeader h;
  h.nx = 123;
  h.ny = 45;
  h.nz = 6;
  h.rel_error_bound = 1e-3;
  h.abs_error_bound = 0.25;
  h.nbins = 1024;
  h.rle_min_run = 96;
  const auto bytes = rpc::encode_lossy_request_header(h);
  ASSERT_EQ(bytes.size(), rpc::kLossyRequestHeaderBytes);
  const auto d = rpc::decode_lossy_request_header(bytes);
  EXPECT_EQ(d.nx, h.nx);
  EXPECT_EQ(d.ny, h.ny);
  EXPECT_EQ(d.nz, h.nz);
  EXPECT_DOUBLE_EQ(d.rel_error_bound, h.rel_error_bound);
  EXPECT_DOUBLE_EQ(d.abs_error_bound, h.abs_error_bound);
  EXPECT_EQ(d.nbins, h.nbins);
  EXPECT_EQ(d.rle_min_run, h.rle_min_run);
}

TEST(RpcLossyProtocol, FieldPayloadRejectsDimsMismatch) {
  rpc::LossyFieldHeader h{4, 4, 4, 0.01};
  auto bytes = rpc::encode_lossy_field_header(h);
  bytes.resize(bytes.size() + 63 * sizeof(float), 0);  // 63 floats != 64
  EXPECT_THROW((void)rpc::decode_lossy_field_payload(bytes), ProtocolError);
  bytes.resize(rpc::kLossyFieldHeaderBytes + 64 * sizeof(float), 0);
  const auto [dh, values] = rpc::decode_lossy_field_payload(bytes);
  EXPECT_EQ(values.size(), 64u);
  EXPECT_DOUBLE_EQ(dh.error_bound, 0.01);
}

TEST(RpcLossy, CompressDecompressRoundTripOnLoopback) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const data::Dims dims{32, 32, 16};
  const auto field = smooth_field(dims);
  rpc::LossyRequestHeader cfg;
  cfg.nx = dims.nx;
  cfg.ny = dims.ny;
  cfg.nz = dims.nz;
  cfg.rel_error_bound = 1e-3;
  cfg.nbins = 1024;
  cfg.rle_min_run = 64;

  RpcCall comp = cli.lossy_compress(std::span<const float>(field), cfg);
  const std::vector<u8> container = comp.result.get();
  ASSERT_FALSE(container.empty());
  EXPECT_EQ(0, std::memcmp(container.data(), "PHL2", 4));
  EXPECT_LT(container.size(), field.size() * sizeof(float));

  RpcCall decomp = cli.lossy_decompress(std::span<const u8>(container));
  const auto [fh, values] =
      rpc::decode_lossy_field_payload(decomp.result.get());
  ASSERT_EQ(values.size(), field.size());
  EXPECT_EQ(fh.nx, dims.nx);
  EXPECT_GT(fh.error_bound, 0);
  double worst = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(field[i]) -
                                     static_cast<double>(values[i])));
  }
  EXPECT_LE(worst, fh.error_bound * 1.0001);
}

TEST(RpcLossy, NarrowAlphabetRoutesToTheU8Service) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const data::Dims dims{24, 24, 8};
  const auto field = smooth_field(dims, 5);
  rpc::LossyRequestHeader cfg;
  cfg.nx = dims.nx;
  cfg.ny = dims.ny;
  cfg.nz = dims.nz;
  cfg.abs_error_bound = 0.02;
  cfg.nbins = 256;  // u8 alphabet → sym_width 1 on the wire → svc8
  const std::vector<u8> container =
      cli.lossy_compress(std::span<const float>(field), cfg).result.get();
  ASSERT_FALSE(container.empty());
  const auto [fh, values] = rpc::decode_lossy_field_payload(
      cli.lossy_decompress(std::span<const u8>(container)).result.get());
  ASSERT_EQ(values.size(), field.size());
  EXPECT_DOUBLE_EQ(fh.error_bound, 0.02);
}

TEST(RpcLossy, BadDimsAndBadNbinsFailTyped) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const data::Dims dims{8, 8, 8};
  const auto field = smooth_field(dims, 9);
  rpc::LossyRequestHeader cfg;
  cfg.nx = 9;  // 9*8*8 != 512
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.rel_error_bound = 1e-3;
  try {
    (void)cli.lossy_compress(std::span<const float>(field), cfg)
        .result.get();
    FAIL() << "dims mismatch must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  cfg.nx = 8;
  cfg.nbins = 2;  // out of the quantizer's range
  try {
    (void)cli.lossy_compress(std::span<const float>(field), cfg)
        .result.get();
    FAIL() << "bad nbins must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  // Overflow-provoking dims: nx*ny*nz wraps to 0 in 64-bit arithmetic, so
  // a naive product comparison would never equal the payload size but a
  // wrap to exactly n would pass — the stepwise check rejects either way.
  cfg = {};
  cfg.nx = u64{1} << 32;
  cfg.ny = u64{1} << 32;
  cfg.nz = 1;
  cfg.rel_error_bound = 1e-3;
  try {
    (void)cli.lossy_compress(std::span<const float>(field), cfg)
        .result.get();
    FAIL() << "wrapping dims must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST(RpcLossy, MalformedContainerFailsTypedOnDecompress) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });
  std::vector<u8> junk = {'P', 'H', 'L', '2', 0, 1, 2, 3, 4, 5};
  try {
    (void)cli.lossy_decompress(std::span<const u8>(junk)).result.get();
    FAIL() << "junk container must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST(RpcLossy, FutureVersionFramesRejectTypedNotHang) {
  // The negotiation story for the new ops: a peer that does not speak v4
  // answers the version gate with kUnsupportedVersion — a probe result,
  // not a dead connection. Simulate the inverse here: a frame from a
  // hypothetical v5 client reaches this server and must come back typed.
  LoopbackHub hub;
  RpcServer server(hub.listener());
  auto conn = hub.connect();

  rpc::Frame f;
  f.h.op = Op::kLossyCompress;
  f.h.request_id = 77;
  f.payload.resize(rpc::kLossyRequestHeaderBytes, 0);
  auto bytes = rpc::encode_frame(f);
  bytes[4] = rpc::kVersion + 1;  // future version byte
  conn->write_all(bytes.data(), bytes.size());
  std::array<u8, rpc::kHeaderBytes> hb;
  ASSERT_TRUE(conn->read_exact(hb.data(), hb.size()));
  const Header resp =
      rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(hb));
  EXPECT_EQ(resp.status, Status::kUnsupportedVersion);
  EXPECT_EQ(resp.request_id, 77u);
}

TEST(RpcLossy, LossyCountersBalanceAcrossAMixedBurst) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });
  auto& reg = obs::MetricsRegistry::global();
  const u64 req0 = reg.counter("lossy.requests");
  const u64 done0 = reg.counter("lossy.completed");
  const u64 fail0 = reg.counter("lossy.failed");

  const data::Dims dims{16, 16, 16};
  const auto field = smooth_field(dims, 13);
  rpc::LossyRequestHeader good;
  good.nx = dims.nx;
  good.ny = dims.ny;
  good.nz = dims.nz;
  good.rel_error_bound = 1e-2;
  good.nbins = 1024;
  std::vector<RpcCall> calls;
  for (int i = 0; i < 8; ++i) {
    calls.push_back(cli.lossy_compress(std::span<const float>(field), good));
  }
  for (auto& c : calls) EXPECT_FALSE(c.result.get().empty());

  // lossy.requests == lossy.completed + lossy.failed — the invariant the
  // CI bench gate also enforces.
  const u64 req = reg.counter("lossy.requests") - req0;
  const u64 done = reg.counter("lossy.completed") - done0;
  const u64 fail = reg.counter("lossy.failed") - fail0;
  EXPECT_EQ(req, 8u);
  EXPECT_EQ(req, done + fail);
  EXPECT_EQ(fail, 0u);
}

}  // namespace
}  // namespace parhuff
