// Foundation utilities: PRNG determinism and distribution sanity, timers,
// statistics, parallel helpers' exception behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/types.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace parhuff {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next();
    EXPECT_EQ(va, b.next());
  }
  EXPECT_NE(Xoshiro256(42).next(), c.next());
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (const u64 n :
       std::initializer_list<u64>{1, 2, 3, 10, 1000, u64{1} << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(n), n);
    }
  }
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Xoshiro256 rng(9);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 / 5);  // within 20%
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(13);
  double sum = 0, sq = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(Rng, GeometricMean) {
  Xoshiro256 rng(17);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.geometric(0.25));
  }
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / kDraws, 3.0, 0.15);
  EXPECT_EQ(Xoshiro256(1).geometric(1.0), 0u);
}

TEST(Stats, Summary) {
  const Summary s = summarize({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(summarize({}).n, 0u);
  EXPECT_DOUBLE_EQ(summarize({7}).median, 7);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 2000000; ++i) x = x + 1e-9;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1e3 * 0.99);
}

TEST(StageTimes, Accumulates) {
  StageTimes st;
  st.add("a", 1.0);
  st.add("a", 0.5);
  st.add("b", 2.0);
  EXPECT_DOUBLE_EQ(st.seconds("a"), 1.5);
  EXPECT_DOUBLE_EQ(st.seconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(st.total_seconds(), 3.5);
}

TEST(StageTimes, CountsInvocations) {
  StageTimes st;
  st.add("a", 1.0);
  st.add("a", 0.5);
  st.add("b", 2.0);
  EXPECT_EQ(st.count("a"), 2u);
  EXPECT_EQ(st.count("b"), 1u);
  EXPECT_EQ(st.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(st.mean_seconds("a"), 0.75);
  EXPECT_DOUBLE_EQ(st.mean_seconds("b"), 2.0);
  EXPECT_DOUBLE_EQ(st.mean_seconds("missing"), 0.0);
  EXPECT_EQ(st.all().at("a").count, 2u);
  EXPECT_DOUBLE_EQ(st.all().at("a").seconds, 1.5);
}

TEST(Gbps, Units) {
  EXPECT_DOUBLE_EQ(gbps(1000000000, 1.0), 1.0);  // decimal GB
  EXPECT_DOUBLE_EQ(gbps(123, 0.0), 0.0);
}

TEST(ParallelFor, ExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 777) throw std::runtime_error("boom");
          },
          2),
      std::runtime_error);
}

TEST(ParallelFor, FirstOfManyExceptionsWins) {
  try {
    parallel_for(
        100, [](std::size_t) { throw std::runtime_error("each"); }, 2);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "each");
  }
}

TEST(ParallelChunks, CoversExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_chunks(hits.size(), 7, [&](std::size_t, std::size_t b,
                                      std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace parhuff
