// Table-driven decoder: equivalence with the bit-serial canonical decoder
// and with a brute-force codeword-matching reference decoder; BitReader
// peek/skip semantics.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/decode.hpp"
#include "core/decode_table.hpp"
#include "core/encode_serial.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/synth_hist.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

/// Reference decoder: longest-prefix match against the raw (code, len)
/// pairs, independent of First/Entry. O(n * H) — test-only.
template <typename Sym>
void reference_decode(const EncodedStream& s, const Codebook& cb,
                      std::vector<Sym>& out) {
  std::map<std::pair<u64, unsigned>, u32> by_code;
  for (u32 sym = 0; sym < cb.nbins; ++sym) {
    if (cb.cw[sym].len) {
      by_code[{cb.cw[sym].bits, cb.cw[sym].len}] = sym;
    }
  }
  out.clear();
  for (std::size_t c = 0; c < s.chunks(); ++c) {
    BitReader br = s.chunk_reader(c);
    for (std::size_t i = 0; i < s.chunk_size(c); ++i) {
      u64 v = 0;
      unsigned l = 0;
      for (;;) {
        v = (v << 1) | br.bit();
        ++l;
        const auto it = by_code.find({v, l});
        if (it != by_code.end()) {
          out.push_back(static_cast<Sym>(it->second));
          break;
        }
        ASSERT_LE(l, cb.max_len) << "no codeword matched";
      }
    }
  }
}

template <typename Sym>
std::vector<Sym> table_decode(const EncodedStream& s, const Codebook& cb,
                              unsigned k) {
  const DecodeTable table(cb, k);
  std::vector<Sym> out(s.n_symbols);
  for (std::size_t c = 0; c < s.chunks(); ++c) {
    BitReader br = s.chunk_reader(c);
    table.decode(br, s.chunk_size(c), out.data() + c * s.chunk_symbols);
  }
  return out;
}

TEST(BitReaderPeek, MatchesTake) {
  Xoshiro256 rng(3);
  BitWriter bw;
  for (int i = 0; i < 100; ++i) bw.put(rng.next() & 0x7FFF, 15);
  const u64 total = bw.bits();
  const auto words = bw.finish();
  BitReader br(words, total);
  while (br.remaining() >= 9) {
    const u64 peeked = br.peek(9);
    EXPECT_EQ(br.take(9), peeked);
  }
}

TEST(BitReaderPeek, ZeroPadsBeyondEnd) {
  BitWriter bw;
  bw.put(0b101, 3);
  const auto words = bw.finish();
  BitReader br(words, 3);
  EXPECT_EQ(br.peek(8), 0b10100000u);
  br.skip(2);
  EXPECT_EQ(br.peek(4), 0b1000u);
  EXPECT_EQ(br.remaining(), 1u);
}

TEST(DecodeTable, KnownSmallCode) {
  // lens {1,2,3,3}: codes 0, 10, 110, 111. k=3 table.
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  const std::vector<u8> input = {0, 3, 1, 2, 0, 0, 3};
  const auto enc = encode_serial<u8>(input, cb, 1024);
  EXPECT_EQ(table_decode<u8>(enc, cb, 3), input);
  EXPECT_EQ(table_decode<u8>(enc, cb, 1), input);  // heavy slow-path use
  EXPECT_EQ(table_decode<u8>(enc, cb, 12), input);
}

class DecodeTableEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecodeTableEquivalence, AgreesWithSerialAndReference) {
  const unsigned k = GetParam();
  const auto input = data::generate_text(120000, 7);
  const auto freq = histogram_serial<u8>(input, 256);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_serial<u8>(input, cb, 2048);

  EXPECT_EQ(table_decode<u8>(enc, cb, k), input);
  EXPECT_EQ(decode_stream<u8>(enc, cb, 1), input);
}

INSTANTIATE_TEST_SUITE_P(Ks, DecodeTableEquivalence,
                         ::testing::Values(1u, 4u, 8u, 12u, 16u));

TEST(DecodeTable, DeepCodesEscapeToSlowPath) {
  // Exponential freqs: codes far longer than the table's k.
  const auto freq = data::exponential_histogram(30, 2.0, 1);
  const Codebook cb = build_codebook_serial(freq);
  ASSERT_GT(cb.max_len, 12u);
  Xoshiro256 rng(2);
  std::vector<u16> input(20000);
  for (auto& s : input) s = static_cast<u16>(rng.below(30));
  const auto enc = encode_serial<u16>(input, cb, 1024);
  EXPECT_EQ(table_decode<u16>(enc, cb, 8), input);
}

TEST(DecodeTable, ReferenceDecoderAgreesOnRandomAlphabets) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nbins = 2 + rng.below(300);
    std::vector<u16> input(5000);
    for (auto& s : input) s = static_cast<u16>(rng.below(nbins));
    const auto freq = histogram_serial<u16>(input, nbins);
    const Codebook cb = build_codebook_serial(freq);
    const auto enc = encode_serial<u16>(input, cb, 512);
    std::vector<u16> ref;
    {
      SCOPED_TRACE(trial);
      reference_decode<u16>(enc, cb, ref);
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_EQ(ref, input);
    EXPECT_EQ(table_decode<u16>(enc, cb, 10), input);
  }
}

TEST(DecodeTable, RejectsOversizedK) {
  // Deep codebook (max_len > 20): an oversized k cannot be clamped away.
  const auto freq = data::exponential_histogram(40, 2.0, 1);
  const Codebook cb = build_codebook_serial(freq);
  ASSERT_GT(cb.max_len, 20u);
  EXPECT_THROW(DecodeTable(cb, 24), std::invalid_argument);
  // A modest k on the same deep book is fine.
  EXPECT_NO_THROW(DecodeTable(cb, 10));
}

TEST(DecodeTable, SizeIsClampedToMaxLen) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{2, 2, 2, 2});
  const DecodeTable t(cb, 12);
  EXPECT_EQ(t.bits(), 2u);
  EXPECT_EQ(t.entries(), 4u);
}

}  // namespace
}  // namespace parhuff
