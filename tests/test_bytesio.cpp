// Bounds-checked byte IO underpinning every container format.
#include <gtest/gtest.h>

#include <vector>

#include "core/bytesio.hpp"

namespace parhuff {
namespace {

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter w;
  w.put<u8>(0xAB);
  w.put<u32>(0xDEADBEEF);
  w.put<u64>(u64{1} << 60);
  w.put<double>(3.5);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u + 4 + 8 + 8);

  ByteReader r(bytes);
  EXPECT_EQ(r.get<u8>(), 0xAB);
  EXPECT_EQ(r.get<u32>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<u64>(), u64{1} << 60);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.5);
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, ArrayRoundTrip) {
  ByteWriter w;
  const std::vector<u32> v = {1, 2, 3, 1000000};
  w.put_array(std::span<const u32>(v));
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.get_array<u32>(4), v);
}

TEST(ByteIo, TruncationThrows) {
  ByteWriter w;
  w.put<u32>(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.get<u64>(), std::runtime_error);
  // Cursor must not have advanced past a failed read's start.
  EXPECT_EQ(r.get<u32>(), 7u);
}

TEST(ByteIo, OverflowSafeNeedCheck) {
  // A huge requested length must not wrap the bounds arithmetic.
  const std::vector<u8> bytes = {1, 2, 3};
  ByteReader r(bytes);
  EXPECT_THROW((void)r.get_array<u8>(static_cast<std::size_t>(-1)),
               std::runtime_error);
  EXPECT_THROW((void)r.get_view(static_cast<std::size_t>(-8)),
               std::runtime_error);
}

TEST(ByteIo, ViewsShareStorage) {
  ByteWriter w;
  w.put<u32>(0x01020304);
  w.put<u32>(0x05060708);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto v = r.get_view(4);
  EXPECT_EQ(v.data(), bytes.data());
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(ByteIo, PositionTracking) {
  ByteWriter w;
  for (int i = 0; i < 10; ++i) w.put<u16>(static_cast<u16>(i));
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.position(), 0u);
  (void)r.get<u16>();
  (void)r.get<u16>();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 16u);
  EXPECT_FALSE(r.done());
}

}  // namespace
}  // namespace parhuff
