// Decoder robustness and container format round trips / tamper rejection.
#include <gtest/gtest.h>

#include <vector>

#include "core/decode.hpp"
#include "core/encode_serial.hpp"
#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

TEST(Decode, CorruptStreamThrows) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  // A stream of all-ones longer than any valid code path: 111 decodes to
  // symbol 3, so feed a stream that ends mid-codeword instead.
  std::vector<word_t> words = {0xC0000000u};  // "11" then exhausted
  BitReader br(words, 2);
  u8 out[4];
  EXPECT_THROW(decode_symbols<u8>(br, cb, 1, out), std::runtime_error);
}

TEST(Decode, TruncatedChunkThrows) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  const std::vector<u8> input = {3, 3, 3, 3};
  EncodedStream enc = encode_serial<u8>(input, cb, 1024);
  enc.chunk_bits[0] -= 2;  // truncate
  EXPECT_THROW((void)decode_stream<u8>(enc, cb, 1), std::runtime_error);
}

TEST(Format, RoundTripByteData) {
  const auto input = data::generate_text(200000, 8);
  PipelineConfig cfg;
  cfg.nbins = 256;
  const auto blob = compress<u8>(input, cfg);
  const auto bytes = serialize(blob);
  const auto blob2 = deserialize<u8>(bytes);
  EXPECT_EQ(decompress(blob2, 2), input);
}

TEST(Format, RoundTripMultiByteWithOverflow) {
  // Force breaking via a deliberately large reduce factor.
  const auto input = data::generate_nyx_quant(50000, 3);
  PipelineConfig cfg;
  cfg.nbins = 1024;
  cfg.magnitude = 10;
  cfg.reduce_factor = 6;  // 64 symbols/group → guaranteed breaking
  PipelineReport rep;
  const auto blob = compress<u16>(input, cfg, &rep);
  EXPECT_GT(blob.stream.overflow.size(), 0u);
  const auto bytes = serialize(blob);
  const auto blob2 = deserialize<u16>(bytes);
  EXPECT_EQ(decompress(blob2, 2), input);
}

TEST(Format, RejectsBadMagic) {
  const auto input = data::generate_text(1000, 1);
  PipelineConfig cfg;
  auto bytes = serialize(compress<u8>(input, cfg));
  bytes[0] = 'X';
  EXPECT_THROW((void)deserialize<u8>(bytes), std::runtime_error);
}

TEST(Format, RejectsSymbolWidthMismatch) {
  const auto input = data::generate_text(1000, 1);
  PipelineConfig cfg;
  const auto bytes = serialize(compress<u8>(input, cfg));
  EXPECT_THROW((void)deserialize<u16>(bytes), std::runtime_error);
}

TEST(Format, RejectsTruncation) {
  const auto input = data::generate_text(5000, 2);
  PipelineConfig cfg;
  auto bytes = serialize(compress<u8>(input, cfg));
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{10}}) {
    std::vector<u8> t(bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)deserialize<u8>(t), std::runtime_error) << cut;
  }
}

TEST(Format, RejectsTrailingGarbage) {
  const auto input = data::generate_text(1000, 4);
  PipelineConfig cfg;
  auto bytes = serialize(compress<u8>(input, cfg));
  bytes.push_back(0);
  EXPECT_THROW((void)deserialize<u8>(bytes), std::runtime_error);
}

TEST(Format, RejectsCorruptLengths) {
  const auto input = data::generate_text(1000, 5);
  PipelineConfig cfg;
  auto bytes = serialize(compress<u8>(input, cfg));
  // The lengths array starts at offset 10 (magic, symbol width, max_len,
  // nbins); zeroing the entry of a symbol that is certainly present ('e')
  // breaks Kraft completeness.
  bytes[10 + 'e'] = 0;
  EXPECT_ANY_THROW((void)deserialize<u8>(bytes));
}

TEST(DecodeRange, SlicesMatchFullDecode) {
  const auto input = data::generate_nyx_quant(50000, 12);
  PipelineConfig cfg;
  cfg.nbins = 1024;
  const auto blob = compress<u16>(input, cfg);
  const auto& s = blob.stream;
  const auto& cb = blob.codebook;
  struct Range {
    std::size_t first, count;
  };
  for (const Range r : {Range{0, 50000}, Range{0, 1}, Range{49999, 1},
                        Range{1000, 1024}, Range{1023, 2}, Range{512, 3000},
                        Range{12345, 6789}, Range{0, 0}, Range{50000, 0}}) {
    const auto slice = decode_range<u16>(s, cb, r.first, r.count, 1);
    ASSERT_EQ(slice.size(), r.count);
    for (std::size_t i = 0; i < r.count; ++i) {
      ASSERT_EQ(slice[i], input[r.first + i])
          << "first=" << r.first << " count=" << r.count << " i=" << i;
    }
  }
}

TEST(DecodeRange, WorksAcrossOverflowGroups) {
  const auto input = data::generate_nyx_quant(30000, 13);
  PipelineConfig cfg;
  cfg.nbins = 1024;
  cfg.reduce_factor = 6;  // force breaking
  const auto blob = compress<u16>(input, cfg);
  ASSERT_GT(blob.stream.overflow.size(), 0u);
  const auto slice = decode_range<u16>(blob.stream, blob.codebook, 7000,
                                       9000, 2);
  for (std::size_t i = 0; i < 9000; ++i) {
    ASSERT_EQ(slice[i], input[7000 + i]);
  }
}

TEST(DecodeRange, RejectsOutOfRange) {
  const std::vector<u8> input = {0, 1, 0, 1};
  PipelineConfig cfg;
  cfg.nbins = 2;
  const auto blob = compress<u8>(input, cfg);
  EXPECT_THROW(
      (void)decode_range<u8>(blob.stream, blob.codebook, 3, 2, 1),
      std::out_of_range);
  EXPECT_THROW((void)decode_range<u8>(blob.stream, blob.codebook,
                                      static_cast<std::size_t>(-1), 2, 1),
               std::out_of_range);
}

TEST(Format, ChecksumCatchesPayloadFlips) {
  const auto input = data::generate_text(50000, 21);
  PipelineConfig cfg;
  cfg.nbins = 256;
  auto bytes = serialize(compress<u8>(input, cfg));
  // Flip one bit somewhere in the back half (payload region): the stream
  // checksum must reject it even when the structure still parses.
  Xoshiro256 rng(3);
  int rejected = 0;
  for (int trial = 0; trial < 16; ++trial) {
    auto bad = bytes;
    const std::size_t pos =
        bytes.size() / 2 + rng.below(bytes.size() / 2 - 16);
    bad[pos] ^= static_cast<u8>(1u << rng.below(8));
    try {
      (void)deserialize<u8>(bad);
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 16);
}

TEST(Format, FileRoundTrip) {
  const auto input = data::generate_text(30000, 6);
  PipelineConfig cfg;
  const auto bytes = serialize(compress<u8>(input, cfg));
  const std::string path = "/tmp/parhuff_test_container.phf";
  write_file(path, bytes);
  const auto read = read_file(path);
  EXPECT_EQ(read, bytes);
  EXPECT_EQ(decompress(deserialize<u8>(read), 2), input);
}

}  // namespace
}  // namespace parhuff
