// Sharded router front-end: rendezvous-hash properties (determinism, seed
// sensitivity, minimal disruption), the ShardHealth state machine, the
// scale-invariant routing key, proxy round-trips through an unmodified
// RpcClient, cache-affinity vs round-robin, the kill-one-of-three failover
// drill with exact terminal accounting (routed == forwarded + failed_over
// + shed), all-shards-down load shedding, deadline passthrough, the
// router fault-storm soak, and lifecycle/probing behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/quant.hpp"
#include "obs/metrics.hpp"
#include "router/harness.hpp"
#include "router/hash.hpp"
#include "router/health.hpp"
#include "router/router.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"
#include "rpc/transport_inmem.hpp"
#include "svc/deadline.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

using router::HealthPolicy;
using router::RouterConfig;
using router::ShardEndpoint;
using router::ShardHarness;
using router::ShardHealth;
using router::ShardRouter;
using rpc::ClientConfig;
using rpc::LoopbackHub;
using rpc::Op;
using rpc::RpcCall;
using rpc::RpcClient;
using rpc::RpcError;
using rpc::RpcOptions;
using rpc::ServerConfig;
using rpc::Status;
using rpc::TransportError;
using util::FaultInjector;
using util::ScopedFaults;

std::vector<u8> ramp_data(std::size_t n, u64 seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

/// Payload `j` draws from an alphabet of j+2 symbols, so every j has a
/// distinct support set and therefore a distinct histogram fingerprint.
std::vector<u8> shaped_payload(std::size_t j, std::size_t n = 8000) {
  std::vector<u8> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<u8>(i % (j + 2));
  }
  return v;
}

/// Shard ServerConfig tuned for tests: immediate dispatch (no batch
/// window parking), small worker pool.
ServerConfig shard_config() {
  ServerConfig sc;
  sc.service.workers = 2;
  sc.service.batch_max_requests = 1;
  return sc;
}

/// RouterConfig tuned for tests: no background prober (tests call
/// probe_now() for determinism), fast backend redial budget.
RouterConfig router_config() {
  RouterConfig rc;
  rc.start_prober = false;
  rc.client.connect_attempts = 3;
  return rc;
}

struct RouterCounters {
  u64 routed, forwarded, failed_over, shed;
  u64 received, written, dropped, perr;
};

RouterCounters snap_counters() {
  auto& reg = obs::MetricsRegistry::global();
  return RouterCounters{
      reg.counter("router.routed"),         reg.counter("router.forwarded"),
      reg.counter("router.failed_over"),    reg.counter("router.shed"),
      reg.counter("router.requests_received"),
      reg.counter("router.responses_written"),
      reg.counter("router.responses_dropped"),
      reg.counter("router.protocol_error_responses")};
}

// --- Rendezvous hashing. -----------------------------------------------------

TEST(RouterHash, OrderIsDeterministicAndTotal) {
  for (u64 key : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
    const auto a = router::rendezvous_order(key, 5, 42);
    const auto b = router::rendezvous_order(key, 5, 42);
    EXPECT_EQ(a, b);
    std::set<u32> distinct(a.begin(), a.end());
    EXPECT_EQ(distinct.size(), 5u);  // a permutation, nothing dropped
  }
}

TEST(RouterHash, SeedReshufflesTheKeySpace) {
  int moved = 0;
  for (u64 key = 0; key < 64; ++key) {
    const auto a = router::rendezvous_order(key, 4, 1);
    const auto b = router::rendezvous_order(key, 4, 2);
    if (a[0] != b[0]) ++moved;
  }
  // Independent seeds agree on a key's home shard only by chance (~1/4).
  EXPECT_GT(moved, 32);
}

TEST(RouterHash, RemovingAShardOnlyRemapsItsOwnKeys) {
  constexpr std::size_t kShards = 4;
  constexpr u64 kSeed = 99;
  for (u64 key = 0; key < 256; ++key) {
    const auto before = router::rendezvous_order(key, kShards, kSeed);
    // "Remove" shard 3 by skipping it in the candidate list: the classic
    // rendezvous guarantee is that every key whose home shard survives
    // keeps exactly that home shard.
    if (before[0] != 3) {
      std::vector<u32> after;
      for (u32 s : before) {
        if (s != 3) after.push_back(s);
      }
      EXPECT_EQ(after[0], before[0]);
    } else {
      // A displaced key falls through to its second choice, which is its
      // first choice among the survivors.
      EXPECT_NE(before[1], 3u);
    }
  }
}

TEST(RouterHash, KeysSpreadRoughlyEvenlyAcrossShards) {
  constexpr std::size_t kShards = 3;
  constexpr int kKeys = 3000;
  std::array<int, kShards> load{};
  Xoshiro256 rng(17);
  for (int i = 0; i < kKeys; ++i) {
    ++load[router::rendezvous_order(rng.next(), kShards, 7)[0]];
  }
  for (const int l : load) {
    EXPECT_GT(l, kKeys / kShards / 2);
    EXPECT_LT(l, kKeys * 2 / static_cast<int>(kShards));
  }
}

// --- Shard health state machine. ---------------------------------------------

TEST(RouterHealthState, TripsAfterConsecutiveFailuresAndResets) {
  HealthPolicy pol;
  pol.unhealthy_after = 3;
  ShardHealth h;
  EXPECT_TRUE(h.healthy());
  h.note_failure(pol);
  h.note_failure(pol);
  EXPECT_TRUE(h.healthy());  // 2 of 3: not yet
  h.note_failure(pol);
  EXPECT_FALSE(h.healthy());
  h.note_success();
  EXPECT_TRUE(h.healthy());
  EXPECT_EQ(h.consecutive_failures(), 0);
}

TEST(RouterHealthState, SuccessBetweenFailuresPreventsTripping) {
  HealthPolicy pol;
  pol.unhealthy_after = 2;
  ShardHealth h;
  for (int i = 0; i < 10; ++i) {
    h.note_failure(pol);
    h.note_success();  // alternating: never two in a row
  }
  EXPECT_TRUE(h.healthy());
}

TEST(RouterHealthState, ProbeNotAcceptingCountsAsFailure) {
  HealthPolicy pol;
  pol.unhealthy_after = 2;
  ShardHealth h;
  rpc::HealthInfo draining;
  draining.accepting = false;
  h.note_probe(draining, pol);
  h.note_probe(draining, pol);
  EXPECT_FALSE(h.healthy());
}

TEST(RouterHealthState, ProbeSetsAndClearsSaturation) {
  HealthPolicy pol;
  pol.saturation_fraction = 0.5;
  ShardHealth h;
  rpc::HealthInfo info;
  info.queue_depth = 6;
  info.queue_capacity = 10;
  h.note_probe(info, pol);
  EXPECT_TRUE(h.saturated());
  EXPECT_TRUE(h.healthy());
  EXPECT_FALSE(h.available());  // saturated shards are routed around
  info.queue_depth = 1;
  h.note_probe(info, pol);
  EXPECT_FALSE(h.saturated());
  EXPECT_TRUE(h.available());
}

TEST(RouterHealthState, QueueFullIsStickyUntilAProbeClearsIt) {
  HealthPolicy pol;
  ShardHealth h;
  h.note_queue_full();
  EXPECT_TRUE(h.saturated());
  h.note_success();  // a served request does NOT clear saturation
  EXPECT_TRUE(h.saturated());
  rpc::HealthInfo drained;  // depth 0 / capacity 10: below any line
  drained.queue_capacity = 10;
  h.note_probe(drained, pol);
  EXPECT_FALSE(h.saturated());
}

// --- Routing key. ------------------------------------------------------------

TEST(RouterKey, SameHistogramShapeSameKeyAcrossScales) {
  // A slice and a 4x repetition have identical shape: equal keys, so both
  // land on the same (cache-warm) shard.
  const auto small = shaped_payload(3, 4000);
  std::vector<u8> big;
  for (int i = 0; i < 4; ++i) big.insert(big.end(), small.begin(), small.end());
  const u64 a = ShardRouter::route_key(Op::kCompress, 1,
                                       std::span<const u8>(small));
  const u64 b =
      ShardRouter::route_key(Op::kCompress, 1, std::span<const u8>(big));
  EXPECT_EQ(a, b);
}

TEST(RouterKey, DifferentSupportDifferentKey) {
  std::set<u64> keys;
  for (std::size_t j = 0; j < 8; ++j) {
    const auto p = shaped_payload(j);
    keys.insert(
        ShardRouter::route_key(Op::kCompress, 1, std::span<const u8>(p)));
  }
  EXPECT_EQ(keys.size(), 8u);
}

TEST(RouterKey, DecompressKeyIsDeterministicPerContainer) {
  const auto c1 = ramp_data(5000, 1);
  const auto c2 = ramp_data(5000, 2);
  EXPECT_EQ(
      ShardRouter::route_key(Op::kDecompress, 1, std::span<const u8>(c1)),
      ShardRouter::route_key(Op::kDecompress, 1, std::span<const u8>(c1)));
  EXPECT_NE(
      ShardRouter::route_key(Op::kDecompress, 1, std::span<const u8>(c1)),
      ShardRouter::route_key(Op::kDecompress, 1, std::span<const u8>(c2)));
}

// --- Proxy round-trips. ------------------------------------------------------

TEST(RouterProxy, CompressAndDecompressRoundTripThroughRouter) {
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  ShardRouter rt(front.listener(), shards.endpoints(), router_config());
  RpcClient cli([&] { return front.connect(); });

  const auto data = ramp_data(20000);
  const std::vector<u8> container =
      cli.compress(std::span<const u8>(data)).result.get();
  ASSERT_FALSE(container.empty());
  EXPECT_EQ(cli.decompress(std::span<const u8>(container)).result.get(),
            data);

  // u16 traffic takes the 65536-bin key path.
  Xoshiro256 rng(3);
  std::vector<u16> wide(6000);
  for (auto& s : wide) s = static_cast<u16>(rng.below(40000));
  const std::vector<u8> c16 =
      cli.compress_data<u16>(std::span<const u16>(wide)).result.get();
  ASSERT_FALSE(c16.empty());
  const std::vector<u8> raw16 =
      cli.decompress(std::span<const u8>(c16), 2).result.get();
  ASSERT_EQ(raw16.size(), wide.size() * 2);
  EXPECT_EQ(0, std::memcmp(raw16.data(), wide.data(), raw16.size()));
}

TEST(RouterProxy, StatsVerbAnswersFromTheRouter) {
  ShardHarness shards(2, shard_config());
  LoopbackHub front;
  ShardRouter rt(front.listener(), shards.endpoints(), router_config());
  RpcClient cli([&] { return front.connect(); });
  const std::string stats = cli.stats().get();
  EXPECT_NE(stats.find("router-stats"), std::string::npos);
}

TEST(RouterProxy, HealthVerbReportsFleetAvailability) {
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  ShardRouter rt(front.listener(), shards.endpoints(), router_config());
  RpcClient cli([&] { return front.connect(); });

  rpc::HealthInfo info = cli.health().get();
  EXPECT_TRUE(info.accepting);
  EXPECT_EQ(info.queue_capacity, 3u);  // fleet size
  EXPECT_EQ(info.queue_depth, 0u);     // everyone available

  // Kill one shard and let probes trip it: the fleet report follows.
  shards.kill(1);
  rt.probe_now();
  rt.probe_now();  // unhealthy_after = 2
  EXPECT_FALSE(rt.shard_healthy(1));
  info = cli.health().get();
  EXPECT_EQ(info.queue_depth, 1u);
}

TEST(RouterProxy, CancelOfUnknownIdIsIdempotent) {
  ShardHarness shards(2, shard_config());
  LoopbackHub front;
  ShardRouter rt(front.listener(), shards.endpoints(), router_config());
  RpcClient cli([&] { return front.connect(); });
  EXPECT_NO_THROW(cli.cancel(0xfeedfaceull).get());
  const auto data = ramp_data(1000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
}

TEST(RouterProxy, LossyVerbsRoundTripThroughRouter) {
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  ShardRouter rt(front.listener(), shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); });

  const data::Dims dims{24, 24, 12};
  std::vector<float> field(dims.total());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01));
  }
  rpc::LossyRequestHeader cfg;
  cfg.nx = dims.nx;
  cfg.ny = dims.ny;
  cfg.nz = dims.nz;
  cfg.rel_error_bound = 1e-3;
  cfg.nbins = 1024;
  cfg.rle_min_run = 64;

  const std::vector<u8> container =
      cli.lossy_compress(std::span<const float>(field), cfg).result.get();
  ASSERT_FALSE(container.empty());
  EXPECT_EQ(0, std::memcmp(container.data(), "PHL2", 4));

  const auto [fh, values] = rpc::decode_lossy_field_payload(
      cli.lossy_decompress(std::span<const u8>(container)).result.get());
  ASSERT_EQ(values.size(), field.size());
  double worst = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(field[i]) -
                                     static_cast<double>(values[i])));
  }
  EXPECT_LE(worst, fh.error_bound * 1.0001);

  // Bad lossy requests come back typed through the proxy hop, not hung.
  rpc::LossyRequestHeader bad = cfg;
  bad.nx = dims.nx + 1;
  try {
    (void)cli.lossy_compress(std::span<const float>(field), bad)
        .result.get();
    FAIL() << "dims mismatch must fail typed through the router";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST(RouterAffinity, LossyConfigEqualTrafficSticksToItsHomeShard) {
  // The lossy route key hashes the 48-byte request header (the quantizer
  // config), not the field samples — successive timesteps of one variable
  // share dims/eb/nbins and must keep landing on the shard whose codebook
  // cache they warmed.
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  ShardRouter rt(front.listener(), shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); });

  const data::Dims dims{16, 16, 8};
  rpc::LossyRequestHeader cfg;
  cfg.nx = dims.nx;
  cfg.ny = dims.ny;
  cfg.nz = dims.nz;
  cfg.rel_error_bound = 1e-3;
  cfg.nbins = 1024;

  // Predict the home shard from the wire payload the client will build.
  std::vector<u8> wire = rpc::encode_lossy_request_header(cfg);
  const u64 key = ShardRouter::route_key(Op::kLossyCompress, 2,
                                         std::span<const u8>(wire));
  const u32 home = router::rendezvous_order(key, 3, rc.hash_seed)[0];
  const u64 home_before = rt.shard_served(home);

  constexpr int kRepeats = 4;
  for (int r = 0; r < kRepeats; ++r) {
    // A different "timestep" each round: same config, different samples.
    std::vector<float> field(dims.total());
    for (std::size_t i = 0; i < field.size(); ++i) {
      field[i] = static_cast<float>(
          std::sin(static_cast<double>(i) * 0.01 + 0.3 * r));
    }
    ASSERT_FALSE(cli.lossy_compress(std::span<const float>(field), cfg)
                     .result.get()
                     .empty());
  }
  EXPECT_EQ(rt.shard_served(home) - home_before,
            static_cast<u64>(kRepeats))
      << "config-equal lossy traffic strayed from its home shard";
}

// --- Affinity. ---------------------------------------------------------------

TEST(RouterAffinity, ConfigEqualTrafficSticksToItsHomeShard) {
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  ShardRouter rt(front.listener(), shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); });

  constexpr std::size_t kShapes = 6;
  constexpr int kRepeats = 4;
  std::array<u64, 3> served_before{};
  for (std::size_t s = 0; s < 3; ++s) served_before[s] = rt.shard_served(s);

  for (std::size_t j = 0; j < kShapes; ++j) {
    const auto payload = shaped_payload(j);
    const u64 key =
        ShardRouter::route_key(Op::kCompress, 1, std::span<const u8>(payload));
    const u32 home = router::rendezvous_order(key, 3, rc.hash_seed)[0];
    const u64 home_before = rt.shard_served(home);
    for (int r = 0; r < kRepeats; ++r) {
      ASSERT_FALSE(
          cli.compress(std::span<const u8>(payload)).result.get().empty());
    }
    // Every repeat of this shape landed on its predicted home shard.
    EXPECT_EQ(rt.shard_served(home) - home_before,
              static_cast<u64>(kRepeats))
        << "shape " << j << " strayed from its home shard";
  }
  u64 total = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    total += rt.shard_served(s) - served_before[s];
  }
  EXPECT_EQ(total, kShapes * kRepeats);
}

TEST(RouterAffinity, AffinityBeatsRoundRobinOnCodebookCacheMisses) {
  auto& reg = obs::MetricsRegistry::global();
  // 7 shapes against 3 shards: the round-robin stride is coprime with the
  // fleet, so every shape visits every shard (a stride divisible by the
  // shard count would fake affinity by accident).
  constexpr std::size_t kShapes = 7;
  constexpr int kRepeats = 3;

  // Phase 1: the same traffic through the router — each shape keeps
  // hitting the shard whose codebook cache it already warmed.
  u64 misses_router = 0;
  {
    ShardHarness shards(3, shard_config());
    LoopbackHub front;
    ShardRouter rt(front.listener(), shards.endpoints(), router_config());
    RpcClient cli([&] { return front.connect(); });
    const u64 miss0 = reg.counter("svc.cache_misses");
    for (int r = 0; r < kRepeats; ++r) {
      for (std::size_t j = 0; j < kShapes; ++j) {
        const auto payload = shaped_payload(j);
        ASSERT_FALSE(
            cli.compress(std::span<const u8>(payload)).result.get().empty());
      }
    }
    misses_router = reg.counter("svc.cache_misses") - miss0;
  }

  // Phase 2: round-robin across three direct clients on a fresh (cold)
  // fleet — every shard has to build every shape's codebook itself.
  u64 misses_rr = 0;
  {
    ShardHarness shards(3, shard_config());
    std::vector<std::unique_ptr<RpcClient>> clis;
    for (std::size_t s = 0; s < 3; ++s) {
      clis.push_back(std::make_unique<RpcClient>(
          [&shards, s] { return shards.connect(s); }));
    }
    const u64 miss0 = reg.counter("svc.cache_misses");
    int next = 0;
    for (int r = 0; r < kRepeats; ++r) {
      for (std::size_t j = 0; j < kShapes; ++j) {
        const auto payload = shaped_payload(j);
        ASSERT_FALSE(clis[static_cast<std::size_t>(next)]
                         ->compress(std::span<const u8>(payload))
                         .result.get()
                         .empty());
        next = (next + 1) % 3;
      }
    }
    misses_rr = reg.counter("svc.cache_misses") - miss0;
  }

  // Affinity builds each shape's codebook once fleet-wide (~kShapes
  // misses); round-robin builds it once per shard (~3x). The strict
  // inequality is the acceptance criterion; the 2x margin guards the
  // signal against incidental misses.
  EXPECT_LT(misses_router, misses_rr);
  EXPECT_GE(misses_rr, misses_router * 2);
}

// --- Failover under load. ----------------------------------------------------

TEST(RouterFailover, KillOneOfThreeUnderLoadEveryFutureResolves) {
  const RouterCounters c0 = snap_counters();
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  rc.max_connections = 4;
  auto rt = std::make_unique<ShardRouter>(front.listener(),
                                          shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); });

  // Open-loop: fire everything without awaiting, kill a shard mid-burst,
  // then await every future. The invariant is resolution — value or typed
  // error — for all of them, with exact terminal accounting.
  constexpr int kRequests = 48;
  std::vector<std::vector<u8>> payloads;
  std::vector<RpcCall> calls;
  payloads.reserve(kRequests);
  calls.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    payloads.push_back(shaped_payload(static_cast<std::size_t>(i % 8),
                                      4000 + 100 * (i % 5)));
  }
  for (int i = 0; i < kRequests / 2; ++i) {
    calls.push_back(cli.compress(std::span<const u8>(payloads[i])));
  }
  shards.kill(0);  // mid-burst: in-flight requests on shard 0 die with it
  for (int i = kRequests / 2; i < kRequests; ++i) {
    calls.push_back(cli.compress(std::span<const u8>(payloads[i])));
  }

  int ok = 0, typed = 0, transport = 0;
  for (auto& c : calls) {
    try {
      if (c.result.get().empty()) throw std::runtime_error("empty");
      ++ok;
    } catch (const RpcError&) {
      ++typed;
    } catch (const TransportError&) {
      ++transport;
    }
  }
  EXPECT_EQ(ok + typed + transport, kRequests);
  EXPECT_EQ(transport, 0) << "client->router connection must survive";
  // Two live shards: most traffic lands, the dead shard's keys fail over.
  EXPECT_GT(ok, kRequests / 2);

  // The dead shard trips unhealthy via passive signals and probes.
  rt->probe_now();
  rt->probe_now();
  EXPECT_FALSE(rt->shard_healthy(0));
  EXPECT_TRUE(rt->shard_healthy(1));
  EXPECT_TRUE(rt->shard_healthy(2));

  // A restarted shard rejoins after one good probe.
  shards.restart(0);
  rt->probe_now();
  EXPECT_TRUE(rt->shard_healthy(0));
  const auto again = shaped_payload(0, 4000);
  EXPECT_FALSE(
      cli.compress(std::span<const u8>(again)).result.get().empty());

  rt->stop();
  const RouterCounters c1 = snap_counters();
  // Terminal accounting: every routed request ended exactly once.
  EXPECT_EQ(c1.routed - c0.routed, static_cast<u64>(kRequests) + 1);
  EXPECT_EQ(c1.routed - c0.routed, (c1.forwarded - c0.forwarded) +
                                       (c1.failed_over - c0.failed_over) +
                                       (c1.shed - c0.shed));
  EXPECT_GT(c1.failed_over - c0.failed_over, 0u)
      << "killing a shard mid-burst must exercise failover";
  // Response-stream accounting mirrors the RpcServer invariant.
  EXPECT_EQ((c1.written - c0.written) + (c1.dropped - c0.dropped),
            (c1.received - c0.received) + (c1.perr - c0.perr));
}

TEST(RouterLoadShed, AllShardsDownShedsTypedInsteadOfHanging) {
  const RouterCounters c0 = snap_counters();
  ShardHarness shards(2, shard_config());
  LoopbackHub front;
  auto rt = std::make_unique<ShardRouter>(front.listener(),
                                          shards.endpoints(),
                                          router_config());
  RpcClient cli([&] { return front.connect(); });

  const auto data = ramp_data(2000);
  ASSERT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
  shards.kill(0);
  shards.kill(1);

  for (int i = 0; i < 4; ++i) {
    RpcCall call = cli.compress(std::span<const u8>(data));
    try {
      (void)call.result.get();
      FAIL() << "request against a dead fleet must fail typed";
    } catch (const RpcError& e) {
      EXPECT_EQ(e.status(), Status::kQueueFull);
    }
  }

  rt->stop();
  const RouterCounters c1 = snap_counters();
  EXPECT_EQ(c1.shed - c0.shed, 4u);
  EXPECT_EQ(c1.routed - c0.routed, (c1.forwarded - c0.forwarded) +
                                       (c1.failed_over - c0.failed_over) +
                                       (c1.shed - c0.shed));
}

TEST(RouterLoadShed, MaxRouteAttemptsBoundsTheFailoverWalk) {
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  rc.max_route_attempts = 1;  // home shard or nothing
  ShardRouter rt(front.listener(), shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); });

  // Find a payload homed on shard 0, then kill exactly that shard: with a
  // 1-attempt budget the request must shed even though 2 shards are fine.
  std::vector<u8> homed;
  for (std::size_t j = 0; j < 32; ++j) {
    auto p = shaped_payload(j, 3000);
    const u64 key =
        ShardRouter::route_key(Op::kCompress, 1, std::span<const u8>(p));
    if (router::rendezvous_order(key, 3, rc.hash_seed)[0] == 0) {
      homed = std::move(p);
      break;
    }
  }
  ASSERT_FALSE(homed.empty());
  ASSERT_FALSE(
      cli.compress(std::span<const u8>(homed)).result.get().empty());
  shards.kill(0);
  RpcCall call = cli.compress(std::span<const u8>(homed));
  EXPECT_THROW((void)call.result.get(), RpcError);
}

// --- Deadlines through the proxy hop. ----------------------------------------

TEST(RouterDeadline, HopelessDeadlineIsTerminalNotFailedOver) {
  auto& reg = obs::MetricsRegistry::global();
  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  ShardRouter rt(front.listener(), shards.endpoints(), router_config());
  RpcClient cli([&] { return front.connect(); });

  const auto data = ramp_data(20000);
  const u64 failed_over0 = reg.counter("router.failed_over");
  RpcOptions opts;
  opts.deadline_seconds = 1e-6;  // hopeless before it leaves the router
  RpcCall call = cli.compress(std::span<const u8>(data), 1, opts);
  EXPECT_THROW((void)call.result.get(), svc::DeadlineExceeded);
  // A deadline miss proves the shard is alive: no failover, no health
  // penalty — a second shard cannot beat an expired budget.
  EXPECT_EQ(reg.counter("router.failed_over"), failed_over0);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_TRUE(rt.shard_healthy(s));
}

// --- Fault storm. ------------------------------------------------------------

TEST(RouterFaultStorm, ArmedRouterSitesEveryFutureStillResolves) {
  const RouterCounters c0 = snap_counters();

  ScopedFaults scope(FaultInjector::global());
  scope.arm("router.route", 0.05)
      .arm("router.proxy.write", 0.05)
      .arm("router.health.probe", 0.25)
      .arm("rpc.server.read", 0.02)
      .arm("rpc.server.write", 0.02);

  ShardHarness shards(3, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  rc.client.connect_attempts = 20;
  auto rt = std::make_unique<ShardRouter>(front.listener(),
                                          shards.endpoints(), rc);
  ClientConfig cc;
  cc.connect_attempts = 20;
  RpcClient cli([&] { return front.connect(); }, cc);

  const auto data = ramp_data(6000);
  std::vector<u8> container;
  for (int i = 0; i < 50 && container.empty(); ++i) {
    try {
      container = cli.compress(std::span<const u8>(data)).result.get();
    } catch (const std::exception&) {
    }
  }
  ASSERT_FALSE(container.empty()) << "no compress survived the storm seed";

  constexpr int kRequests = 48;
  int ok = 0, typed = 0, transport = 0, cancel_deadline = 0;
  for (int i = 0; i < kRequests; ++i) {
    try {
      if (i % 2 == 0) {
        if (cli.compress(std::span<const u8>(data)).result.get().empty()) {
          throw std::runtime_error("empty");
        }
      } else {
        if (cli.decompress(std::span<const u8>(container)).result.get() !=
            data) {
          throw std::runtime_error("mismatch");
        }
      }
      ++ok;
    } catch (const TransportError&) {
      ++transport;
    } catch (const RpcError&) {
      ++typed;
    } catch (const svc::CancelledError&) {
      ++cancel_deadline;
    } catch (const svc::DeadlineExceeded&) {
      ++cancel_deadline;
    }
    if (i % 8 == 0) rt->probe_now();  // storm the probe site too
  }
  EXPECT_EQ(ok + typed + transport + cancel_deadline, kRequests);
  EXPECT_GT(ok, 0) << "storm killed every request — probabilities too hot";

  rt->stop();
  const RouterCounters c1 = snap_counters();
  // Both balances hold under injected faults: that is the soak's point.
  EXPECT_EQ(c1.routed - c0.routed, (c1.forwarded - c0.forwarded) +
                                       (c1.failed_over - c0.failed_over) +
                                       (c1.shed - c0.shed));
  EXPECT_EQ((c1.written - c0.written) + (c1.dropped - c0.dropped),
            (c1.received - c0.received) + (c1.perr - c0.perr));
}

// --- Lifecycle. --------------------------------------------------------------

TEST(RouterLifecycle, EmptyShardListThrows) {
  LoopbackHub front;
  EXPECT_THROW(ShardRouter(front.listener(), {}, router_config()),
               std::invalid_argument);
}

TEST(RouterLifecycle, StopIsIdempotentAndRefusesNewWork) {
  ShardHarness shards(2, shard_config());
  LoopbackHub front;
  auto rt = std::make_unique<ShardRouter>(front.listener(),
                                          shards.endpoints(),
                                          router_config());
  RpcClient cli([&] { return front.connect(); });
  const auto data = ramp_data(1000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
  rt->stop();
  rt->stop();  // idempotent
  EXPECT_EQ(rt->connection_count(), 0u);
  RpcCall call = cli.compress(std::span<const u8>(data));
  EXPECT_THROW((void)call.result.get(), TransportError);
}

TEST(RouterLifecycle, BackgroundProberTripsAndRecoversShards) {
  ShardHarness shards(2, shard_config());
  LoopbackHub front;
  RouterConfig rc = router_config();
  rc.start_prober = true;
  rc.health.probe_interval_seconds = 0.02;
  rc.health.unhealthy_after = 2;
  ShardRouter rt(front.listener(), shards.endpoints(), rc);

  shards.kill(1);
  // The background prober needs ~2 cadences to trip the dead shard.
  for (int i = 0; i < 100 && rt.shard_healthy(1); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(rt.shard_healthy(1));
  EXPECT_TRUE(rt.shard_healthy(0));

  shards.restart(1);
  for (int i = 0; i < 100 && !rt.shard_healthy(1); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(rt.shard_healthy(1));
}

}  // namespace
}  // namespace parhuff
