// Entropy + reduction-factor rule, dense→sparse, parallel scan helpers,
// histogram variants, and the performance models' sanity properties.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/entropy.hpp"
#include "core/histogram.hpp"
#include "core/sparse.hpp"
#include "core/tree.hpp"
#include "data/synth_hist.hpp"
#include "data/textgen.hpp"
#include "perf/cpu_model.hpp"
#include "perf/gpu_model.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace parhuff {
namespace {

// --- Entropy / reduction factor (Fig. 3). ---------------------------------

TEST(Entropy, UniformIsLogN) {
  std::vector<u64> h(256, 10);
  EXPECT_NEAR(shannon_entropy(h), 8.0, 1e-9);
}

TEST(Entropy, DegenerateIsZero) {
  std::vector<u64> h(256, 0);
  h[3] = 1000;
  EXPECT_NEAR(shannon_entropy(h), 0.0, 1e-9);
  EXPECT_NEAR(shannon_entropy(std::vector<u64>(4, 0)), 0.0, 1e-9);
}

TEST(ReduceFactorRule, PaperOperatingPoints) {
  // β = 1.0272 → rule 4 (paper: "potentially r=4 for Nyx-Quant").
  EXPECT_EQ(reduce_factor_rule(1.0272), 4u);
  // β = 2.7307 (NCI) → 3; β = 5.16 (enwik) → 2; β = 4.02 (MR) → 2.
  EXPECT_EQ(reduce_factor_rule(2.7307), 3u);
  EXPECT_EQ(reduce_factor_rule(5.1639), 2u);
  EXPECT_EQ(reduce_factor_rule(4.0165), 2u);
  EXPECT_EQ(reduce_factor_rule(4.1428), 2u);
}

TEST(ReduceFactorRule, MergedWidthInHalfOpenBand) {
  // For any β, the chosen r puts β·2^r in [W/2, W) whenever β ≤ W/4.
  for (double beta = 0.4; beta < 8.0; beta += 0.13) {
    const u32 r = reduce_factor_rule(beta, 32);
    const double merged = merged_bitwidth(beta, r);
    EXPECT_LT(merged, 32.0) << beta;
    if (r > 1) {
      EXPECT_GE(merged, 16.0) << beta;
    }
  }
}

TEST(ReduceFactorRule, DecisionCappedAtThree) {
  EXPECT_EQ(decide_reduce_factor(1.0272, 10), 3u);
  EXPECT_EQ(decide_reduce_factor(5.16, 10), 2u);
  EXPECT_EQ(decide_reduce_factor(1.0, 2), 1u);  // cap at magnitude-1
}

// --- Dense→sparse. ---------------------------------------------------------

TEST(Sparse, BasicAndEdges) {
  EXPECT_TRUE(dense_to_sparse(std::vector<u8>{}).empty());
  EXPECT_TRUE(dense_to_sparse(std::vector<u8>(100, 0)).empty());
  const auto all = dense_to_sparse(std::vector<u8>(5, 1));
  EXPECT_EQ(all, (std::vector<u32>{0, 1, 2, 3, 4}));
}

TEST(Sparse, MatchesReferenceOnRandomMasks) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(100000);
    std::vector<u8> mask(n);
    for (auto& m : mask) m = rng.below(17) == 0 ? 1 : 0;
    std::vector<u32> expect;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask[i]) expect.push_back(static_cast<u32>(i));
    }
    EXPECT_EQ(dense_to_sparse(mask), expect);
  }
}

// --- Parallel helpers. ------------------------------------------------------

TEST(Scan, ExclusiveSmallAndLarge) {
  std::vector<u64> v = {3, 1, 4, 1, 5};
  EXPECT_EQ(exclusive_scan(v), 14u);
  EXPECT_EQ(v, (std::vector<u64>{0, 3, 4, 8, 9}));

  Xoshiro256 rng(8);
  std::vector<u64> big(100000);
  for (auto& x : big) x = rng.below(100);
  std::vector<u64> ref = big;
  u64 run = 0;
  for (auto& x : ref) {
    const u64 t = x;
    x = run;
    run += t;
  }
  const u64 total = exclusive_scan(big, 2);
  EXPECT_EQ(total, run);
  EXPECT_EQ(big, ref);
}

// --- Histogram variants. ----------------------------------------------------

TEST(Histogram, AllVariantsAgree) {
  const auto input = data::generate_text(300000, 12);
  const auto a = histogram_serial<u8>(input, 256);
  const auto b = histogram_openmp<u8>(input, 256, 2);
  simt::MemTally tally;
  const auto c = histogram_simt<u8>(input, 256, &tally);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_GT(tally.shared_atomics, 0u);
  u64 total = 0;
  for (u64 f : a) total += f;
  EXPECT_EQ(total, input.size());
}

TEST(Histogram, LargeAlphabetMultiPass) {
  // 65536 bins exceed the shared budget (the paper's footnote-3 limit);
  // the multi-pass kernel re-reads the input once per bin range.
  std::vector<u16> input(100000);
  Xoshiro256 rng(4);
  for (auto& s : input) s = static_cast<u16>(rng.below(65536));
  simt::MemTally tally;
  const auto h = histogram_simt<u16>(input, 65536, &tally);
  EXPECT_EQ(h, histogram_serial<u16>(input, 65536));
  // 6 passes over the data: read amplification visible in the tally.
  EXPECT_GT(tally.global_read_bytes, input.size() * sizeof(u16) * 5);
}

TEST(Histogram, LargeAlphabetGlobalAtomicFallback) {
  std::vector<u16> input(50000);
  Xoshiro256 rng(5);
  for (auto& s : input) s = static_cast<u16>(rng.below(65536));
  SimtHistogramConfig cfg;
  cfg.allow_multipass = false;
  simt::MemTally tally;
  const auto h = histogram_simt<u16>(input, 65536, &tally, cfg);
  EXPECT_EQ(h, histogram_serial<u16>(input, 65536));
  EXPECT_GE(tally.global_atomics, input.size());  // one RMW per symbol
}

TEST(Histogram, MultiPassBoundaryBins) {
  // Alphabet sized to land symbols exactly on pass boundaries.
  SimtHistogramConfig cfg;
  cfg.shared_budget_bytes = 64 * sizeof(u32);  // 64 bins per pass
  std::vector<u16> input;
  for (u16 s = 0; s < 200; ++s) {
    for (int k = 0; k <= s % 3; ++k) input.push_back(s);
  }
  const auto h = histogram_simt<u16>(input, 200, nullptr, cfg);
  EXPECT_EQ(h, histogram_serial<u16>(input, 200));
}

TEST(Histogram, EmptyInput) {
  const auto h = histogram_simt<u8>(std::vector<u8>{}, 256, nullptr);
  for (u64 f : h) EXPECT_EQ(f, 0u);
}

// --- Performance models. ----------------------------------------------------

TEST(GpuModel, MoreSectorsMoreTime) {
  simt::MemTally small, large;
  small.global_read(1000, 4, simt::Pattern::kCoalesced);
  large.global_read(1000, 4, simt::Pattern::kStrided);
  const auto spec = simt::DeviceSpec::v100();
  EXPECT_LT(perf::model_time(small, spec).total(),
            perf::model_time(large, spec).total());
}

TEST(GpuModel, V100FasterThanRtx5000OnBandwidthBoundWork) {
  simt::MemTally t;
  t.global_read(u64{1} << 24, 4, simt::Pattern::kCoalesced);
  EXPECT_LT(perf::model_time(t, simt::DeviceSpec::v100()).total(),
            perf::model_time(t, simt::DeviceSpec::rtx5000()).total());
}

TEST(GpuModel, LaunchOverheadCounts) {
  simt::MemTally t;
  t.kernel_launches = 10;
  const auto spec = simt::DeviceSpec::v100();
  EXPECT_NEAR(perf::model_time(t, spec).total(), 600e-6, 1e-9);
}

TEST(CpuModel, ScalingShapeMatchesTableVI) {
  const perf::CpuSpec spec;
  const double single = 1.22;  // paper's 1-core encode GB/s
  // Monotone growth to 56 cores, collapse at 64.
  const double t32 = perf::scaled_throughput_gbps(single, 32, spec);
  const double t56 = perf::scaled_throughput_gbps(single, 56, spec);
  const double t64 = perf::scaled_throughput_gbps(single, 64, spec);
  EXPECT_GT(t32, perf::scaled_throughput_gbps(single, 16, spec));
  EXPECT_GT(t56, t32);
  EXPECT_LT(t64, t56);
  // Parallel efficiency bands from Table VI.
  EXPECT_GT(perf::parallel_efficiency(single, 32, spec), 0.90);
  const double e56 = perf::parallel_efficiency(single, 56, spec);
  EXPECT_GT(e56, 0.70);
  EXPECT_LT(e56, 0.92);
}

TEST(CpuModel, RegionOverheadHurtsSmallTasks) {
  const perf::CpuSpec spec;
  // A tiny task with many regions: more threads should NOT help (Table IV's
  // small-codebook regime).
  const double serial = 200e-6;
  const double t1 = perf::region_task_seconds(serial, 120, 1, spec);
  const double t8 = perf::region_task_seconds(serial, 120, 8, spec);
  EXPECT_GT(t8, t1);
  // A large task amortizes the overhead.
  const double big = 50e-3;
  EXPECT_LT(perf::region_task_seconds(big, 120, 8, spec),
            perf::region_task_seconds(big, 120, 1, spec));
}

// --- Table formatting (bench output backbone). ------------------------------

TEST(TextTable, RendersAlignedRows) {
  TextTable t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1.25"});
  t.rule();
  t.row({"beta", "100.00"});
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("100.00"), std::string::npos);
}

TEST(Fmt, Helpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.0012, 4), "0.1200%");
  EXPECT_EQ(fmt_bytes(256 * 1000 * 1000), "256 MB");
  EXPECT_EQ(fmt_bytes(std::size_t{1400} * 1000 * 1000), "1.4 GB");
}

}  // namespace
}  // namespace parhuff
