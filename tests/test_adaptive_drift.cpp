// Adaptive codebook lifecycle under drifting traffic
// (svc/codebook_manager.hpp), proven deterministically on
// util::VirtualClock — zero real sleeps anywhere in this file. The
// drifting sources come from the proptest harness (proptest.hpp): seeded
// families whose batch histograms sum to an exact power of two, so at the
// default swing the fingerprint never changes (pure soft miss — the
// covers() guard can never catch the drift; only the manager can), while
// swing >= 1.6 also crosses fingerprint bands (hard misses racing
// rebuilds — exercised by the fuzz suite and the soak below).
//
//   * Oracle bound: under gradual drift the manager's achieved ratio
//     stays within 3% of an oracle that rebuilds every batch, while
//     performing at most 10% as many builds.
//   * Hysteresis: a disarmed bucket never re-triggers, however high the
//     estimate, until it re-arms below divergence_low_bits.
//   * Budget: the token bucket defers triggers when drained and releases
//     them when the virtual clock replenishes it.
//   * Recovery: after an abrupt regime switch, the hot-swapped book's
//     ratio on the new regime is within tolerance of a cold fresh build.
//   * Determinism: identical runs produce identical lifecycle counters.
//   * Soak: 8 threads of drifting traffic through the full service under
//     a fault storm covering every site including svc.adaptive.*; every
//     future resolves and the lifecycle accounting balances exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/entropy.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "proptest.hpp"
#include "svc/service.hpp"
#include "util/clock.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"
#include "util/work_steal.hpp"

namespace parhuff {
namespace {

using proptest::DriftKind;
using proptest::DriftSource;
using proptest::DriftSpec;
using svc::AdaptivePolicy;
using svc::CodebookCache;
using svc::CodebookManager;
using svc::CompressionService;
using svc::Fingerprint;
using svc::ServiceConfig;
using svc::SubmitOptions;
using util::Clock;
using util::FaultInjector;
using util::ScopedFaults;
using util::VirtualClock;

PipelineConfig drift_config(std::size_t nbins = 64) {
  PipelineConfig cfg;
  cfg.nbins = static_cast<u32>(nbins);
  cfg.codebook = CodebookKind::kSerialTree;
  return cfg;
}

/// Thresholds tuned to the default gradual family: its divergence over
/// the fresh-book baseline reaches ~0.09 bits/symbol by the end of the
/// run (entropy ~4.6), so high=0.05 triggers once drift has cost real
/// ratio and low=0.02 re-arms only after a swap restored the baseline.
AdaptivePolicy oracle_policy() {
  AdaptivePolicy p;
  p.enabled = true;
  p.window_decay = 0.5;
  p.min_window_symbols = 1024;
  p.divergence_high_bits = 0.05;
  p.divergence_low_bits = 0.02;
  p.max_rebuilds_per_period = 8;
  p.budget_period_seconds = 1.0;
  return p;
}

/// Directly-driven manager rig: the same cache + executor + clock wiring
/// the service builds, without the batching/retry machinery, so each test
/// sequences observe() / quiesce() exactly.
struct DirectRig {
  explicit DirectRig(const AdaptivePolicy& policy)
      : pool(2), mgr(policy, cache, pool, vc) {}
  CodebookCache cache;
  WorkStealExecutor pool;
  VirtualClock vc;
  CodebookManager mgr;
};

/// One run of the service's shared phase against a drift source: per
/// batch, consult the cache under the real fingerprint, apply the
/// covers() guard, build+insert on miss, account the achieved bits, then
/// observe + quiesce (the deterministic swap barrier — a triggered
/// rebuild lands before the next batch, exactly what a drained service
/// guarantees).
struct DriveResult {
  double achieved_bits = 0;  ///< Σ expected bits of the book actually used
  double oracle_bits = 0;    ///< Σ expected bits of a per-batch fresh book
  std::size_t hard_builds = 0;  ///< find() misses + covers() rejects
  CodebookManager::Counters counters;
};

DriveResult drive(DirectRig& rig, const DriftSource& src,
                  const PipelineConfig& cfg) {
  DriveResult out;
  const u64 seed = svc::cache_seed(cfg);
  const double n = static_cast<double>(src.batch_symbols());
  for (std::size_t t = 0; t < src.spec().batches; ++t) {
    const std::vector<u64> h = src.histogram(t);
    const Fingerprint fp = svc::fingerprint_histogram(h, seed);
    std::shared_ptr<const Codebook> book = rig.cache.find(fp);
    const bool hit = book && CodebookCache::covers(*book, h);
    if (!hit) {
      book = std::make_shared<const Codebook>(build_codebook(h, cfg));
      rig.cache.insert(fp, book);
      ++out.hard_builds;
    }
    out.achieved_bits += book->average_bits(h) * n;
    const Codebook fresh = build_codebook(h, cfg);
    out.oracle_bits += fresh.average_bits(h) * n;
    rig.mgr.observe(fp, h, book, cfg, hit);
    rig.mgr.quiesce();
  }
  out.counters = rig.mgr.counters();
  return out;
}

// ---------------------------------------------------------------------------

TEST(AdaptiveDrift, AchievesOracleRatioWithTenPercentOfTheBuilds) {
  const auto failure = proptest::find_drift_failure(
      DriftKind::kGradual, 2,
      [](const DriftSource& src,
         const proptest::DriftCaseId&) -> std::optional<std::string> {
        const PipelineConfig cfg = drift_config(src.spec().nbins);
        DirectRig rig(oracle_policy());
        const DriveResult r = drive(rig, src, cfg);

        // The construction keeps every batch inside one fingerprint: the
        // drift is invisible to the covers() guard, so the manager is
        // the only repair mechanism in play.
        if (r.hard_builds != 1) {
          return "expected exactly one hard build (t=0), got " +
                 std::to_string(r.hard_builds);
        }
        const std::size_t builds =
            r.hard_builds + static_cast<std::size_t>(
                                r.counters.rebuilds_started);
        const std::size_t oracle_builds = src.spec().batches;
        if (builds * 10 > oracle_builds) {
          return "too many builds: " + std::to_string(builds) + " vs oracle " +
                 std::to_string(oracle_builds);
        }
        if (r.counters.rebuilds_applied < 1) {
          return "drift never triggered a rebuild";
        }
        if (!(r.achieved_bits <= r.oracle_bits * 1.03)) {
          return "achieved ratio drifted beyond 3% of the per-batch oracle: " +
                 std::to_string(r.achieved_bits) + " vs " +
                 std::to_string(r.oracle_bits);
        }
        // Lifecycle accounting is exact after quiesce().
        const auto& c = r.counters;
        if (c.rebuilds_started != c.rebuilds_applied + c.rebuilds_superseded +
                                     c.rebuilds_cancelled + c.rebuilds_failed) {
          return "lifecycle accounting unbalanced";
        }
        return std::nullopt;
      });
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(AdaptiveDrift, PostSwapRatioRecoversAfterAbruptShift) {
  const auto failure = proptest::find_drift_failure(
      DriftKind::kAbrupt, 2,
      [](const DriftSource& src,
         const proptest::DriftCaseId&) -> std::optional<std::string> {
        const PipelineConfig cfg = drift_config(src.spec().nbins);
        DirectRig rig(oracle_policy());
        const DriveResult r = drive(rig, src, cfg);
        if (r.counters.rebuilds_applied < 1) {
          return "regime switch never triggered a rebuild";
        }
        // After the mid-run switch and the resulting hot swap, the book
        // the cache now serves must price the *new* regime within
        // tolerance of a cold fresh build — the swap actually repaired
        // the ratio, it didn't just cycle the lifecycle counters.
        const std::size_t last = src.spec().batches - 1;
        const std::vector<u64> h = src.histogram(last);
        const Fingerprint fp =
            svc::fingerprint_histogram(h, svc::cache_seed(cfg));
        const std::shared_ptr<const Codebook> swapped = rig.cache.find(fp);
        if (!swapped) return "cache lost the bucket's book";
        const Codebook fresh = build_codebook(h, cfg);
        const double gap = swapped->average_bits(h) - fresh.average_bits(h);
        if (!(gap <= 0.03)) {
          return "post-swap book still " + std::to_string(gap) +
                 " bits/symbol worse than a fresh build";
        }
        // The swap restored the baseline, so the bucket re-armed.
        if (rig.mgr.divergence(fp) > rig.mgr.policy().divergence_low_bits) {
          return "divergence did not fall back under the re-arm threshold";
        }
        return std::nullopt;
      });
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(AdaptiveDrift, HysteresisHoldsDisarmedBucketAfterFailedRebuild) {
  // A failed rebuild leaves the bucket disarmed: however high the
  // estimate stays, no second rebuild starts until the estimate falls
  // below divergence_low_bits. This is the thrash bound — a persistently
  // failing build must not be retried on every batch.
  ScopedFaults scope(FaultInjector::global());
  scope.arm("svc.adaptive.rebuild", 1.0);

  const PipelineConfig cfg = drift_config();
  DirectRig rig(oracle_policy());
  // Uniform baseline and a sharply skewed drift over the same support.
  std::vector<u64> base(64, 128);
  std::vector<u64> skew(64, 4);
  for (std::size_t i = 0; i < 8; ++i) skew[i] = 960;
  const Fingerprint fp =
      svc::fingerprint_histogram(base, svc::cache_seed(cfg));
  const auto book =
      std::make_shared<const Codebook>(build_codebook(base, cfg));

  rig.mgr.observe(fp, base, book, cfg, /*cache_hit=*/false);  // baseline
  for (int i = 0; i < 5; ++i) {
    rig.mgr.observe(fp, skew, book, cfg, /*cache_hit=*/true);
    rig.mgr.quiesce();
  }
  const auto c = rig.mgr.counters();
  EXPECT_EQ(c.rebuilds_started, 1u) << "disarmed bucket re-triggered";
  EXPECT_EQ(c.rebuilds_failed, 1u);
  EXPECT_GE(c.hysteresis_held, 3u);
  EXPECT_GT(rig.mgr.divergence(fp),
            rig.mgr.policy().divergence_high_bits);
  EXPECT_EQ(c.rebuilds_started, c.rebuilds_applied + c.rebuilds_superseded +
                                    c.rebuilds_cancelled + c.rebuilds_failed);
}

TEST(AdaptiveDrift, BudgetDefersTriggersUntilTheClockReplenishes) {
  AdaptivePolicy policy = oracle_policy();
  policy.max_rebuilds_per_period = 1;
  policy.budget_period_seconds = 1.0;
  const PipelineConfig cfg = drift_config();
  DirectRig rig(policy);

  // Two independent buckets, both drifted far over threshold. The bases
  // must differ in *shape*, not just scale — the fingerprint bands are
  // shares, so two flat histograms collide whatever their totals.
  std::vector<u64> base_a(64, 128), base_b(64, 64);
  base_b[0] = 2048;
  std::vector<u64> skew(64, 4);
  for (std::size_t i = 0; i < 8; ++i) skew[i] = 960;
  const Fingerprint fa =
      svc::fingerprint_histogram(base_a, svc::cache_seed(cfg));
  const Fingerprint fb =
      svc::fingerprint_histogram(base_b, svc::cache_seed(cfg));
  ASSERT_NE(fa.hash, fb.hash);
  const auto book_a =
      std::make_shared<const Codebook>(build_codebook(base_a, cfg));
  const auto book_b =
      std::make_shared<const Codebook>(build_codebook(base_b, cfg));
  rig.mgr.observe(fa, base_a, book_a, cfg, false);
  rig.mgr.observe(fb, base_b, book_b, cfg, false);

  // Both trigger in the same instant: one token, so exactly one starts
  // and the other defers — but stays armed.
  rig.mgr.observe(fa, skew, book_a, cfg, true);
  rig.mgr.observe(fb, skew, book_b, cfg, true);
  rig.mgr.quiesce();
  auto c = rig.mgr.counters();
  EXPECT_EQ(c.rebuilds_started, 1u);
  EXPECT_EQ(c.budget_deferred, 1u);

  // No time has passed: the deferred bucket re-fires and defers again.
  rig.mgr.observe(fb, skew, book_b, cfg, true);
  rig.mgr.quiesce();
  c = rig.mgr.counters();
  EXPECT_EQ(c.rebuilds_started, 1u);
  EXPECT_EQ(c.budget_deferred, 2u);

  // Advance the virtual clock past the period: the token bucket
  // replenishes and the held trigger goes through.
  rig.vc.advance(Clock::dur(2.0));
  rig.mgr.observe(fb, skew, book_b, cfg, true);
  rig.mgr.quiesce();
  c = rig.mgr.counters();
  EXPECT_EQ(c.rebuilds_started, 2u);
  EXPECT_EQ(c.rebuilds_applied, 2u);
  EXPECT_EQ(c.rebuilds_started, c.rebuilds_applied + c.rebuilds_superseded +
                                    c.rebuilds_cancelled + c.rebuilds_failed);
}

TEST(AdaptiveDrift, IdenticalRunsProduceIdenticalLifecycles) {
  DriftSpec spec;
  spec.batches = 40;
  const DriftSource src(
      spec, proptest::case_seed(0xd21f7000ull, 7));
  const PipelineConfig cfg = drift_config();
  auto run = [&] {
    DirectRig rig(oracle_policy());
    return drive(rig, src, cfg);
  };
  const DriveResult a = run();
  const DriveResult b = run();
  EXPECT_EQ(a.achieved_bits, b.achieved_bits);
  EXPECT_EQ(a.hard_builds, b.hard_builds);
  EXPECT_EQ(a.counters.observations, b.counters.observations);
  EXPECT_EQ(a.counters.estimates, b.counters.estimates);
  EXPECT_EQ(a.counters.rebuilds_started, b.counters.rebuilds_started);
  EXPECT_EQ(a.counters.rebuilds_applied, b.counters.rebuilds_applied);
  EXPECT_EQ(a.counters.rebuilds_superseded, b.counters.rebuilds_superseded);
  EXPECT_EQ(a.counters.rebuilds_cancelled, b.counters.rebuilds_cancelled);
  EXPECT_EQ(a.counters.rebuilds_failed, b.counters.rebuilds_failed);
  EXPECT_EQ(a.counters.budget_deferred, b.counters.budget_deferred);
  EXPECT_EQ(a.counters.hysteresis_held, b.counters.hysteresis_held);
}

// --- Soak: drifting traffic × fault storm through the full service. ----------

TEST(AdaptiveDrift, SoakFaultStormEveryFutureResolvesAndAccountingBalances) {
  ScopedFaults scope(FaultInjector::global());
  FaultInjector::global().seed(2026);
  scope.arm("svc.histogram", 0.05)
      .arm("svc.codebook", 0.1)
      .arm("svc.encode", 0.1)
      .arm("svc.cache.find", 0.05)
      .arm("svc.cache.insert", 0.05)
      .arm("executor.submit", 0.05)
      .arm("svc.adaptive.estimate", 0.2)
      .arm("svc.adaptive.rebuild", 0.3);

  // Activity-driven virtual time (the soak idiom from test_fault.cpp):
  // every clock query advances 20 µs, so deadlines, backoff sleeps, the
  // batch window and the rebuild token bucket all run at full logical
  // coverage with zero real sleeping.
  VirtualClock vc;
  vc.auto_advance_every(1, Clock::dur(20e-6));

  ServiceConfig sc;
  sc.workers = 4;
  sc.queue_capacity = 64;
  sc.retry.max_attempts = 2;
  sc.retry.backoff.initial_seconds = 20e-6;
  sc.retry.backoff.max_seconds = 200e-6;
  sc.batch_window_seconds = 100e-6;
  sc.clock = &vc;
  sc.adaptive.enabled = true;
  sc.adaptive.window_decay = 0.5;
  sc.adaptive.min_window_symbols = 256;
  sc.adaptive.divergence_high_bits = 0.02;
  sc.adaptive.divergence_low_bits = 0.01;
  sc.adaptive.max_rebuilds_per_period = 4;
  sc.adaptive.budget_period_seconds = 1e-3;
  CompressionService<u16> svc(sc);
  ASSERT_NE(svc.adaptive(), nullptr);

  constexpr int kThreads = 8;
  std::atomic<int> ok{0}, deadline{0}, cancelled{0}, other{0};
  std::atomic<int> bad_roundtrip{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DriftSpec spec;
      spec.batches = 30;
      spec.log2_batch_symbols = 11;
      // Even threads drift inside one fingerprint (pure soft misses);
      // odd threads cross bands too (hard misses racing rebuilds).
      if (t % 2 == 1) spec.swing = 1.6;
      const DriftSource src(
          spec, proptest::case_seed(0x50a7e000ull, static_cast<u64>(t)));
      Xoshiro256 rng(3000 + static_cast<u64>(t));
      for (std::size_t i = 0; i < spec.batches; ++i) {
        const std::vector<u16> data = src.batch<u16>(i);
        SubmitOptions opts;
        const u64 dl = rng.below(10);
        if (dl < 2) {
          opts.deadline =
              svc::Deadline::in(50e-6 * static_cast<double>(1 + dl), vc);
        } else if (dl < 4) {
          opts.deadline = svc::Deadline::in(5.0, vc);
        }
        auto sub =
            svc.submit(std::span<const u16>(data), drift_config(), opts);
        if (rng.below(12) == 0) (void)sub.handle.cancel();
        try {
          const auto res = sub.result.get();
          ok.fetch_add(1);
          if (svc::decompress(res) != data) bad_roundtrip.fetch_add(1);
        } catch (const svc::DeadlineExceeded&) {
          deadline.fetch_add(1);
        } catch (const svc::CancelledError&) {
          cancelled.fetch_add(1);
        } catch (...) {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const int total = kThreads * 30;
  EXPECT_EQ(ok.load() + deadline.load() + cancelled.load() + other.load(),
            total);
  EXPECT_EQ(other.load(), 0) << "a fault leaked past the retry/degrade net";
  EXPECT_EQ(bad_roundtrip.load(), 0);
  EXPECT_GT(ok.load(), 0);

  svc.drain();
  svc.adaptive()->quiesce();
  // The lifecycle invariant under the storm: every started rebuild
  // resolved, as exactly one of the four outcomes.
  const auto c = svc.adaptive()->counters();
  EXPECT_EQ(c.rebuilds_started, c.rebuilds_applied + c.rebuilds_superseded +
                                    c.rebuilds_cancelled + c.rebuilds_failed);
  EXPECT_GT(c.observations, 0u);
  EXPECT_EQ(c.estimates + c.estimate_failures, c.observations)
      << "every observation either produced an estimate or counted a failure";
}

}  // namespace
}  // namespace parhuff
