// Self-synchronizing fine-grained decoder (CUHD-style): bit-exactness with
// the sequential decoder, convergence behaviour, fallback paths, and
// corruption rejection.
#include <gtest/gtest.h>

#include <vector>

#include "core/decode.hpp"
#include "core/decode_selfsync.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/datasets.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

template <typename Sym>
std::vector<u64> hist_of(const std::vector<Sym>& v, std::size_t nbins) {
  std::vector<u64> h(nbins, 0);
  for (Sym s : v) ++h[static_cast<std::size_t>(s)];
  return h;
}

TEST(SelfSync, MatchesSequentialOnText) {
  const auto input = data::generate_text(400000, 1);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  const auto enc = encode_serial<u8>(input, cb, 4096);
  SelfSyncStats st;
  EXPECT_EQ(decode_selfsync<u8>(enc, cb, {}, nullptr, &st), input);
  EXPECT_GT(st.subsequences, 0u);
  EXPECT_EQ(st.fallback_chunks, 0u);
}

TEST(SelfSync, ConvergesFastOnRealisticStreams) {
  // The self-synchronization property: the overwhelming majority of
  // subsequences lock on after a couple of Jacobi passes.
  const auto input = data::generate_text(1 << 20, 2);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  const auto enc = encode_serial<u8>(input, cb, 8192);
  SelfSyncStats st;
  (void)decode_selfsync<u8>(enc, cb, {}, nullptr, &st);
  const double avg_passes = static_cast<double>(st.sync_passes) /
                            static_cast<double>(enc.chunks());
  EXPECT_LT(avg_passes, 6.0);
  EXPECT_LT(st.max_chunk_passes, 12u);
}

TEST(SelfSync, LowEntropyQuantCodes) {
  const auto input = data::generate_nyx_quant(500000, 3);
  const Codebook cb = build_codebook_serial(hist_of(input, 1024));
  const auto enc = encode_serial<u16>(input, cb, 4096);
  EXPECT_EQ(decode_selfsync<u16>(enc, cb, {}), input);
}

TEST(SelfSync, ReduceShuffleStreamWithoutBreaking) {
  const auto input = data::generate_nyx_quant(300000, 5);
  const Codebook cb = build_codebook_serial(hist_of(input, 1024));
  const auto enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, 3}, nullptr, nullptr);
  ASSERT_TRUE(enc.overflow.empty());
  SelfSyncStats st;
  EXPECT_EQ(decode_selfsync<u16>(enc, cb, {}, nullptr, &st), input);
  EXPECT_EQ(st.fallback_chunks, 0u);
}

TEST(SelfSync, FallsBackOnOverflowChunks) {
  const auto input = data::generate_nyx_quant(200000, 7);
  const Codebook cb = build_codebook_serial(hist_of(input, 1024));
  ReduceShuffleStats est;
  const auto enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, 6}, nullptr, &est);
  ASSERT_GT(est.breaking_groups, 0u);
  SelfSyncStats st;
  EXPECT_EQ(decode_selfsync<u16>(enc, cb, {}, nullptr, &st), input);
  EXPECT_GT(st.fallback_chunks, 0u);
}

class SelfSyncSubseq : public ::testing::TestWithParam<u32> {};

TEST_P(SelfSyncSubseq, AllSubsequenceSizes) {
  const auto input = data::generate_text(200000, 9);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  const auto enc = encode_serial<u8>(input, cb, 2048);
  SelfSyncConfig cfg;
  cfg.subseq_bits = GetParam();
  EXPECT_EQ(decode_selfsync<u8>(enc, cb, cfg), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelfSyncSubseq,
                         ::testing::Values(64u, 128u, 256u, 1024u, 4096u));

TEST(SelfSync, RejectsTooSmallSubsequences) {
  const auto freq = data::exponential_histogram(40, 2.0, 1);
  const Codebook cb = build_codebook_serial(freq);  // max_len > 32
  EncodedStream dummy;
  dummy.n_symbols = 1;
  dummy.chunk_symbols = 1024;
  dummy.chunk_bits = {1};
  SelfSyncConfig cfg;
  cfg.subseq_bits = 16;
  EXPECT_THROW((void)decode_selfsync<u16>(dummy, cb, cfg),
               std::invalid_argument);
}

TEST(SelfSync, CorruptionDetectedViaCountMismatch) {
  const auto input = data::generate_text(100000, 11);
  const Codebook cb = build_codebook_serial(hist_of(input, 256));
  auto enc = encode_serial<u8>(input, cb, 4096);
  Xoshiro256 rng(5);
  int outcomes = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto broken = enc;
    broken.payload[rng.below(broken.payload.size())] ^=
        word_t{1} << rng.below(32);
    try {
      const auto got = decode_selfsync<u8>(broken, cb, {});
      // A flip can still produce a consistent (wrong) stream; size holds.
      EXPECT_EQ(got.size(), input.size());
    } catch (const std::exception&) {
      ++outcomes;  // detected
    }
  }
  // At least some flips must be detected by the count/fixpoint checks.
  EXPECT_GT(outcomes, 0);
}

TEST(SelfSync, EmptyAndTinyInputs) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  EncodedStream empty;
  empty.chunk_symbols = 1024;
  EXPECT_TRUE(decode_selfsync<u8>(empty, cb, {}).empty());

  const std::vector<u8> tiny = {0, 1, 1, 0, 1};
  const auto enc = encode_serial<u8>(tiny, cb, 1024);
  EXPECT_EQ(decode_selfsync<u8>(enc, cb, {}), tiny);
}

}  // namespace
}  // namespace parhuff
