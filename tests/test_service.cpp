// Compression service layer: work-stealing executor, histogram
// fingerprinting, the sharded codebook cache (including its correctness
// guard), and the service itself — concurrent round trips, batching,
// backpressure under both overflow policies, and cache behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "data/quant.hpp"
#include "data/textgen.hpp"
#include "lossy/lossy.hpp"
#include "obs/metrics.hpp"
#include "svc/codebook_cache.hpp"
#include "svc/fingerprint.hpp"
#include "svc/service.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/work_steal.hpp"

namespace parhuff {
namespace {

// A host-realistic config: everything serial, so timings and coverage are
// deterministic and the tests don't depend on the SIMT simulator.
PipelineConfig serial_config(std::size_t nbins = 256) {
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

// --- WorkStealExecutor. ------------------------------------------------------

TEST(WorkSteal, RunsEverythingAndWaitIdleIsABarrier) {
  WorkStealExecutor ex(4);
  EXPECT_EQ(ex.worker_count(), 4u);
  std::atomic<i64> sum{0};
  for (int i = 0; i < 1000; ++i) {
    ex.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  ex.wait_idle();
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
  EXPECT_EQ(ex.stats().executed, 1000u);
}

TEST(WorkSteal, NestedSubmissionsComplete) {
  WorkStealExecutor ex(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    ex.submit([&] {
      for (int j = 0; j < 4; ++j) {
        ex.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  ex.wait_idle();
  EXPECT_EQ(count.load(), 32);
  EXPECT_EQ(ex.stats().executed, 40u);
}

TEST(WorkSteal, IdleWorkersStealFromABusyDeque) {
  WorkStealExecutor ex(4);
  std::atomic<int> count{0};
  // The root task floods its own deque (nested submits land there), then
  // stays busy until every nested task ran. Its owner can never pop its
  // own deque, so all 64 nested tasks must be stolen by the idle workers.
  ex.submit([&] {
    for (int j = 0; j < 64; ++j) {
      ex.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    while (count.load(std::memory_order_relaxed) < 64) {
      std::this_thread::yield();
    }
  });
  ex.wait_idle();
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(ex.stats().stolen, 64u);
}

TEST(WorkSteal, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    WorkStealExecutor ex(2);
    for (int i = 0; i < 64; ++i) {
      ex.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // dtor must run everything already accepted
  EXPECT_EQ(count.load(), 64);
}

TEST(WorkSteal, IdleParkRunsOnTheInjectedClock) {
  // A frozen VirtualClock must not wedge the pool: the idle park is a
  // bounded timed wait re-armed until work arrives, so tasks submitted
  // while time stands still run promptly, and the park provably consults
  // the injected clock rather than the process steady clock.
  util::VirtualClock vc;
  WorkStealExecutor ex(2, &vc);
  // Let the workers reach their first park so the submit below has to
  // wake a clock-parked worker, not catch one mid-startup.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(vc.queries(), 0u);  // parking consulted the virtual clock
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    ex.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  ex.wait_idle();
  EXPECT_EQ(count.load(), 16);
  EXPECT_EQ(ex.stats().executed, 16u);
}

// --- Histogram fingerprinting. -----------------------------------------------

TEST(ServiceFingerprint, ShapeIsScaleInvariant) {
  const std::vector<u64> a = {10, 20, 30, 0, 5};
  const std::vector<u64> b = {100, 200, 300, 0, 50};  // 10x the counts
  EXPECT_EQ(svc::fingerprint_histogram(a), svc::fingerprint_histogram(b));
}

TEST(ServiceFingerprint, SupportChangeAlwaysChangesHash) {
  const std::vector<u64> a = {10, 20, 30, 0};
  std::vector<u64> b = a;
  b[3] = 1;  // bin 3 gains support
  EXPECT_NE(svc::fingerprint_histogram(a).hash,
            svc::fingerprint_histogram(b).hash);
}

TEST(ServiceFingerprint, SeedAndAlphabetSizeDistinguish) {
  const std::vector<u64> a = {4, 4, 4, 4};
  EXPECT_NE(svc::fingerprint_histogram(a, 1).hash,
            svc::fingerprint_histogram(a, 2).hash);
  const std::vector<u64> wider = {4, 4, 4, 4, 0, 0};
  EXPECT_NE(svc::fingerprint_histogram(a), svc::fingerprint_histogram(wider));

  PipelineConfig tree = serial_config();
  PipelineConfig par = serial_config();
  par.codebook = CodebookKind::kParallelOmp;
  EXPECT_NE(svc::cache_seed(tree), svc::cache_seed(par));
}

// --- CodebookCache. ----------------------------------------------------------

std::shared_ptr<const Codebook> book_for(const std::vector<u64>& freq) {
  return std::make_shared<const Codebook>(
      build_codebook(freq, serial_config(freq.size())));
}

TEST(CodebookCacheTest, HitTouchesLruAndEvictionDropsColdest) {
  svc::CodebookCache cache(svc::CacheConfig{.shards = 1,
                                            .capacity_per_shard = 2});
  const auto book = book_for({1, 1, 1, 1});
  const svc::Fingerprint fp1{101, 4}, fp2{102, 4}, fp3{103, 4};
  cache.insert(fp1, book);
  cache.insert(fp2, book);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(fp1), nullptr);  // touch: fp2 is now coldest
  cache.insert(fp3, book);              // evicts fp2
  EXPECT_EQ(cache.find(fp2), nullptr);
  EXPECT_NE(cache.find(fp1), nullptr);
  EXPECT_NE(cache.find(fp3), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.insertions, 3u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CodebookCacheTest, MismatchedFingerprintOnSameHashIsAMiss) {
  svc::CodebookCache cache;
  cache.insert(svc::Fingerprint{7, 4}, book_for({1, 1, 1, 1}));
  // Same hash slot, different alphabet size: must not serve the entry.
  EXPECT_EQ(cache.find(svc::Fingerprint{7, 8}), nullptr);
}

TEST(CodebookCacheTest, CoversRequiresEveryPresentSymbol) {
  const auto book = book_for({5, 5, 0, 5});  // symbols 0, 1, 3 encodable
  EXPECT_TRUE(svc::CodebookCache::covers(*book, {{1, 0, 0, 1}}));
  EXPECT_TRUE(svc::CodebookCache::covers(*book, {{0, 9, 0, 0}}));
  EXPECT_FALSE(svc::CodebookCache::covers(*book, {{0, 0, 1, 0}}));
  // A wider request histogram is covered only where the extra bins are
  // empty.
  EXPECT_TRUE(svc::CodebookCache::covers(*book, {{1, 1, 0, 1, 0, 0}}));
  EXPECT_FALSE(svc::CodebookCache::covers(*book, {{1, 1, 0, 1, 0, 2}}));
}

// --- CompressionService: round trips under concurrency. ----------------------

TEST(Service, RoundTripUnderConcurrentSubmitters) {
  svc::ServiceConfig sc;
  sc.workers = 4;
  sc.batch_window_seconds = 200e-6;
  svc::CompressionService<u16> service(sc);

  const PipelineConfig cfg_a = serial_config(1024);
  PipelineConfig cfg_b = cfg_a;
  cfg_b.magnitude = 12;  // distinct config: never coalesced with cfg_a

  const auto base = data::generate_nyx_quant(1 << 18, 42);
  // Cache-ineligible: larger than batch_eligible_symbols, dispatches solo.
  const auto big = data::generate_nyx_quant(200000, 7);
  ASSERT_GT(big.size(), sc.batch_eligible_symbols);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  using Item = std::pair<std::vector<u16>, std::future<svc::CompressResult<u16>>>;
  std::vector<std::vector<Item>> work(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t off =
            (static_cast<std::size_t>(t * kPerThread + i) * 4096) %
            (base.size() - 4096);
        const std::span<const u16> slice(base.data() + off, 4096);
        const PipelineConfig& cfg = (i % 2) ? cfg_b : cfg_a;
        const svc::Priority prio =
            (i % 3 == 0) ? svc::Priority::kHigh : svc::Priority::kNormal;
        auto fut = service.submit(slice, cfg, prio);
        work[t].emplace_back(std::vector<u16>(slice.begin(), slice.end()),
                             std::move(fut));
      }
      work[t].emplace_back(big,
                           service.submit(std::span<const u16>(big), cfg_a));
    });
  }
  for (std::thread& t : submitters) t.join();

  for (auto& thread_work : work) {
    for (auto& [original, fut] : thread_work) {
      const svc::CompressResult<u16> res = fut.get();
      ASSERT_NE(res.codebook, nullptr);
      EXPECT_EQ(svc::decompress(res), original);
    }
  }
  service.drain();
  EXPECT_EQ(service.queue_depth(), 0u);

  const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  EXPECT_GE(reg.counter("svc.requests_completed"),
            static_cast<u64>(kThreads * (kPerThread + 1)));
  EXPECT_GE(reg.histo("svc.request_seconds").count,
            static_cast<u64>(kThreads * (kPerThread + 1)));
  EXPECT_GE(reg.counter("svc.batches"), 1u);
}

// --- Batching. ---------------------------------------------------------------

TEST(Service, BatcherCoalescesConfigEqualSmallRequests) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 50e-3;  // long window: the cap closes the batch
  sc.batch_max_requests = 8;
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg = serial_config();

  const auto text = data::generate_text(4096, 9);
  std::vector<std::future<svc::CompressResult<u8>>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(service.submit(std::span<const u8>(text), cfg));
  }
  std::shared_ptr<const Codebook> shared;
  for (auto& f : futs) {
    const svc::CompressResult<u8> res = f.get();
    EXPECT_EQ(res.batch_requests, 8u);
    if (!shared) shared = res.codebook;
    // One codebook instance built for (and shared by) the whole batch.
    EXPECT_EQ(res.codebook.get(), shared.get());
    EXPECT_EQ(svc::decompress(res), text);
  }
}

TEST(Service, BatchesNeverMixConfigs) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 20e-3;
  sc.batch_max_requests = 2;  // each pair fills a batch immediately
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg_a = serial_config();
  PipelineConfig cfg_b = cfg_a;
  cfg_b.magnitude = 8;

  const auto text = data::generate_text(2048, 17);
  std::vector<std::future<svc::CompressResult<u8>>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(
        service.submit(std::span<const u8>(text), (i % 2) ? cfg_b : cfg_a));
  }
  for (auto& f : futs) {
    const svc::CompressResult<u8> res = f.get();
    EXPECT_LE(res.batch_requests, 2u);
    EXPECT_EQ(svc::decompress(res), text);
  }
}

// --- Backpressure. -----------------------------------------------------------

TEST(Service, RejectPolicyThrowsAtTheOutstandingBound) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 2;
  sc.overflow = svc::OverflowPolicy::kReject;
  sc.batch_window_seconds = 0;
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg = serial_config();

  // Large enough that neither request can complete in the microseconds
  // between the submits, so the third submit deterministically sees the
  // bound.
  const auto slow = data::generate_text(4u << 20, 5);
  const u64 rejected_before =
      obs::MetricsRegistry::global().counter("svc.rejected_requests");

  auto f1 = service.submit(std::span<const u8>(slow), cfg);
  auto f2 = service.submit(std::span<const u8>(slow), cfg);
  EXPECT_THROW((void)service.submit(std::span<const u8>(slow), cfg),
               svc::QueueFullError);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("svc.rejected_requests"),
            rejected_before + 1);

  // The admitted requests are unaffected.
  EXPECT_EQ(svc::decompress(f1.get()), slow);
  EXPECT_EQ(svc::decompress(f2.get()), slow);
  // Capacity freed: submitting works again.
  service.drain();
  EXPECT_EQ(svc::decompress(
                service.submit(std::span<const u8>(slow), cfg).get()),
            slow);
}

TEST(Service, BlockPolicyStallsSubmittersUntilCapacityFrees) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 1;
  sc.overflow = svc::OverflowPolicy::kBlock;
  sc.batch_window_seconds = 0;
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg = serial_config();

  const auto text = data::generate_text(512u << 10, 23);
  const u64 stalls_before =
      obs::MetricsRegistry::global().counter("svc.backpressure_events");

  std::vector<std::future<svc::CompressResult<u8>>> futs;
  for (int i = 0; i < 4; ++i) {
    // With capacity 1, every submit after the first must block until the
    // previous request completes — yet all are admitted eventually.
    futs.push_back(service.submit(std::span<const u8>(text), cfg));
    EXPECT_LE(service.queue_depth(), 1u);
  }
  for (auto& f : futs) EXPECT_EQ(svc::decompress(f.get()), text);
  EXPECT_GE(obs::MetricsRegistry::global().counter("svc.backpressure_events"),
            stalls_before + 1);
}

// --- Codebook cache behavior through the service. ----------------------------

TEST(Service, CacheHitOnRepeatedDistribution) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 0;  // isolate caching from batching
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg = serial_config();
  const auto text = data::generate_text(16384, 31);

  const svc::CompressResult<u8> first =
      service.submit(std::span<const u8>(text), cfg).get();
  EXPECT_FALSE(first.cache_hit);
  const svc::CompressResult<u8> second =
      service.submit(std::span<const u8>(text), cfg).get();
  EXPECT_TRUE(second.cache_hit);
  // The hit serves the very codebook instance the first request built.
  EXPECT_EQ(second.codebook.get(), first.codebook.get());
  EXPECT_EQ(svc::decompress(second), text);
  EXPECT_GE(service.cache().stats().hits, 1u);
}

TEST(Service, CacheDisabledNeverHits) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 0;
  sc.enable_cache = false;
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg = serial_config();
  const auto text = data::generate_text(8192, 37);
  for (int i = 0; i < 3; ++i) {
    const svc::CompressResult<u8> res =
        service.submit(std::span<const u8>(text), cfg).get();
    EXPECT_FALSE(res.cache_hit);
    EXPECT_EQ(svc::decompress(res), text);
  }
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST(Service, CacheGuardForcesRebuildWhenCachedBookLacksSymbols) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 0;
  svc::CompressionService<u8> service(sc);
  const PipelineConfig cfg = serial_config();

  std::vector<u8> request(10000);
  for (std::size_t i = 0; i < request.size(); ++i) {
    request[i] = static_cast<u8>(i % 10);  // symbols 0..9
  }

  // Plant a codebook under the exact fingerprint the service will compute
  // for this request — but one that can only encode symbols {0, 1}. The
  // coarse fingerprint can alias distributions like this in the wild; the
  // covers() guard is what keeps it correct.
  const auto freq = histogram_serial<u8>(request, cfg.nbins);
  const svc::Fingerprint fp =
      svc::fingerprint_histogram(freq, svc::cache_seed(cfg));
  std::vector<u64> poison_freq(cfg.nbins, 0);
  poison_freq[0] = poison_freq[1] = 1;
  service.cache().insert(fp, book_for(poison_freq));

  const u64 guard_before =
      obs::MetricsRegistry::global().counter("svc.cache_guard_rejects");
  const svc::CompressResult<u8> res =
      service.submit(std::span<const u8>(request), cfg).get();
  EXPECT_FALSE(res.cache_hit);  // the poisoned entry was not used
  EXPECT_EQ(svc::decompress(res), request);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("svc.cache_guard_rejects"),
            guard_before + 1);

  // The rebuilt book replaced the poisoned entry: a repeat now hits.
  const svc::CompressResult<u8> repeat =
      service.submit(std::span<const u8>(request), cfg).get();
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(svc::decompress(repeat), request);
}

// --- Lifecycle. --------------------------------------------------------------

TEST(Service, InvalidConfigThrows) {
  svc::ServiceConfig sc;
  sc.queue_capacity = 0;
  EXPECT_THROW(svc::CompressionService<u8> service(sc),
               std::invalid_argument);

  svc::CompressionService<u8> ok;
  PipelineConfig bad;
  bad.nbins = 0;
  EXPECT_THROW((void)ok.submit(std::span<const u8>(), bad),
               std::invalid_argument);
}

TEST(Service, DestructorCompletesAdmittedRequests) {
  const auto text = data::generate_text(32768, 41);
  std::vector<std::future<svc::CompressResult<u8>>> futs;
  {
    svc::ServiceConfig sc;
    sc.workers = 2;
    sc.batch_window_seconds = 5e-3;
    svc::CompressionService<u8> service(sc);
    for (int i = 0; i < 16; ++i) {
      futs.push_back(
          service.submit(std::span<const u8>(text), serial_config()));
    }
  }  // dtor drains
  for (auto& f : futs) EXPECT_EQ(svc::decompress(f.get()), text);
}

TEST(Service, DestructorWakesSubmitterBlockedAtCapacity) {
  // Regression: a thread blocked in submit() under OverflowPolicy::kBlock
  // while the destructor runs must be woken and receive std::logic_error —
  // not deadlock on the capacity condition variable, and not race the
  // teardown of the members it still touches. The first request is large
  // enough to hold the single capacity slot while the second submitter
  // parks and the destructor starts.
  const auto text = data::generate_text(8 << 20, 43);
  std::atomic<bool> submitter_threw{false};
  std::atomic<bool> submitter_admitted{false};
  std::future<svc::CompressResult<u8>> first;
  std::thread blocked;
  {
    svc::ServiceConfig sc;
    sc.workers = 1;
    sc.queue_capacity = 1;
    sc.overflow = svc::OverflowPolicy::kBlock;
    svc::CompressionService<u8> service(sc);
    first = service.submit(std::span<const u8>(text), serial_config());
    blocked = std::thread([&] {
      try {
        auto f = service.submit(std::span<const u8>(text), serial_config());
        submitter_admitted.store(true);
        (void)f.get();  // if admitted, the dtor still drains it
      } catch (const std::logic_error&) {
        submitter_threw.store(true);
      }
    });
    // Give the thread time to park on the capacity wait, then destroy the
    // service underneath it. The dtor must wake it before teardown.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }  // dtor: wakes blocked submitters, waits for them to leave, drains
  blocked.join();
  // Either outcome is legal — the submitter squeezed in before shutdown or
  // was woken with logic_error — but it must never deadlock, and the
  // admitted request must still resolve.
  EXPECT_TRUE(submitter_threw.load() || submitter_admitted.load());
  EXPECT_EQ(svc::decompress(first.get()), text);
}

// --- Lossy submissions. ------------------------------------------------------

std::vector<float> lossy_test_field(data::Dims dims, u64 seed = 17) {
  std::vector<float> f(dims.total());
  Xoshiro256 rng(seed);
  const double phase = 0.001 * static_cast<double>(rng.below(1000));
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<float>(
        std::sin(static_cast<double>(i) * 0.02 + phase));
  }
  return f;
}

lossy::FusedConfig lossy_serial_config(u32 nbins) {
  lossy::FusedConfig cfg;
  cfg.rel_error_bound = 1e-3;
  cfg.nbins = nbins;
  cfg.rle_min_run = 64;
  cfg.pipeline = serial_config(nbins);
  return cfg;
}

TEST(ServiceLossy, SubmitRoundTripsWithinTheBound) {
  svc::ServiceConfig sc;
  sc.workers = 2;
  svc::CompressionService<u16> service(sc);
  const data::Dims dims{24, 24, 12};
  const auto field = lossy_test_field(dims);

  svc::LossySubmission sub = service.submit_lossy(
      std::vector<float>(field), dims, lossy_serial_config(1024));
  const svc::LossyResult res = sub.result.get();
  ASSERT_FALSE(res.container.empty());
  EXPECT_GT(res.report.ratio(), 1.0);
  EXPECT_EQ(res.report.rle_run_symbols + res.report.residual_symbols,
            dims.total());

  const lossy::Field back = lossy::decompress_field(res.container);
  ASSERT_EQ(back.values.size(), field.size());
  double worst = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(field[i]) -
                                     static_cast<double>(back.values[i])));
  }
  EXPECT_LE(worst, res.report.error_bound * 1.0001);
}

TEST(ServiceLossy, WidthPredicateIsEnforcedAtSubmit) {
  // nbins <= 256 belongs to the u8 service, wider to the u16 service —
  // the same invariant the RPC server's routing relies on.
  svc::CompressionService<u8> narrow;
  svc::CompressionService<u16> wide;
  const data::Dims dims{8, 8, 8};
  const auto field = lossy_test_field(dims);
  EXPECT_THROW((void)narrow.submit_lossy(std::vector<float>(field), dims,
                                         lossy_serial_config(1024)),
               std::invalid_argument);
  EXPECT_THROW((void)wide.submit_lossy(std::vector<float>(field), dims,
                                       lossy_serial_config(256)),
               std::invalid_argument);
  // The valid pairings go through.
  EXPECT_FALSE(narrow
                   .submit_lossy(std::vector<float>(field), dims,
                                 lossy_serial_config(256))
                   .result.get()
                   .container.empty());
  EXPECT_FALSE(wide
                   .submit_lossy(std::vector<float>(field), dims,
                                 lossy_serial_config(1024))
                   .result.get()
                   .container.empty());
}

TEST(ServiceLossy, RepeatedConfigHitsTheCodebookCache) {
  svc::ServiceConfig sc;
  sc.workers = 1;
  sc.batch_window_seconds = 0;
  svc::CompressionService<u16> service(sc);
  const data::Dims dims{24, 24, 12};
  const lossy::FusedConfig cfg = lossy_serial_config(1024);

  // Same field → same residual histogram → same fingerprint.
  const auto field = lossy_test_field(dims, 23);
  const svc::LossyResult first =
      service.submit_lossy(std::vector<float>(field), dims, cfg).result.get();
  EXPECT_FALSE(first.cache_hit);
  const svc::LossyResult second =
      service.submit_lossy(std::vector<float>(field), dims, cfg).result.get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.report.cache_hit);
  // The hit must not have changed the bytes.
  EXPECT_EQ(second.container, first.container);
}

TEST(ServiceLossy, CountersBalanceAcrossSuccessAndFailure) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 req0 = reg.counter("lossy.requests");
  const u64 done0 = reg.counter("lossy.completed");
  const u64 fail0 = reg.counter("lossy.failed");

  svc::ServiceConfig sc;
  sc.workers = 1;
  svc::CompressionService<u16> service(sc);
  const data::Dims dims{16, 16, 8};
  const auto field = lossy_test_field(dims, 29);

  // Two successes.
  for (int i = 0; i < 2; ++i) {
    (void)service
        .submit_lossy(std::vector<float>(field), dims,
                      lossy_serial_config(1024))
        .result.get();
  }
  // One failure past admission: a dead-on-arrival deadline counts a
  // request AND a failure (the reject-at-submit width error above counts
  // neither — it never became a request).
  svc::SubmitOptions doa;
  doa.deadline = svc::Deadline::in(-1.0);
  svc::LossySubmission sub = service.submit_lossy(
      std::vector<float>(field), dims, lossy_serial_config(1024), doa);
  EXPECT_THROW((void)sub.result.get(), svc::DeadlineExceeded);

  EXPECT_EQ(reg.counter("lossy.requests") - req0, 3u);
  EXPECT_EQ(reg.counter("lossy.requests") - req0,
            (reg.counter("lossy.completed") - done0) +
                (reg.counter("lossy.failed") - fail0));
}

}  // namespace
}  // namespace parhuff
