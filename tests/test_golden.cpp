// Format stability: a fixed input must serialize to the same bytes on
// every build (the on-disk format is a compatibility contract). If a
// deliberate format change breaks this test, bump the container magic and
// refresh the golden digest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/decode_gaparray.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "data/quant.hpp"
#include "lossy/fused.hpp"
#include "lossy/lossy.hpp"
#include "proptest.hpp"
#include "svc/service.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"
#include "util/work_steal.hpp"

namespace parhuff {
namespace {

std::vector<u8> golden_input() {
  // Deterministic, structure-rich: runs, alternations, all-of-alphabet.
  std::vector<u8> v;
  for (int rep = 0; rep < 50; ++rep) {
    for (int s = 0; s < 16; ++s) {
      for (int k = 0; k <= s; ++k) v.push_back(static_cast<u8>(s));
    }
  }
  return v;
}

TEST(Golden, ContainerBytesAreStable) {
  PipelineConfig cfg;
  cfg.nbins = 16;
  cfg.magnitude = 8;
  cfg.encoder = EncoderKind::kReduceShuffleSimt;
  cfg.reduce_factor = 2;
  const auto input = golden_input();
  const auto bytes = serialize(compress<u8>(input, cfg));

  // Self-consistency first (protects the digest's meaning).
  EXPECT_EQ(decompress(deserialize<u8>(bytes)), input);

  // The frozen digest of the serialized container. Regenerate with:
  //   printf '0x%016llx\n' <fnv1a of the bytes>
  const u64 digest = fnv1a(bytes);
  constexpr u64 kGoldenDigest = 0x078c76b76780743aull;
  if (kGoldenDigest != 0) {
    EXPECT_EQ(digest, kGoldenDigest)
        << "serialized container changed; if intentional, bump the format "
           "magic and refresh kGoldenDigest (new value: 0x" << std::hex
        << digest << ")";
  } else {
    // Bootstrap mode: print the digest so it can be frozen.
    std::printf("golden digest: 0x%016llx size=%zu\n",
                static_cast<unsigned long long>(digest), bytes.size());
  }
}

TEST(Golden, AdaptiveContainerBytesAreStable) {
  PipelineConfig cfg;
  cfg.nbins = 16;
  cfg.magnitude = 8;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  const auto input = golden_input();
  const auto bytes = serialize(compress<u8>(input, cfg));
  EXPECT_EQ(decompress(deserialize<u8>(bytes)), input);
  const u64 digest = fnv1a(bytes);
  constexpr u64 kGoldenDigest = 0xa092c92955cd5187ull;
  if (kGoldenDigest != 0) {
    EXPECT_EQ(digest, kGoldenDigest);
  } else {
    std::printf("golden adaptive digest: 0x%016llx size=%zu\n",
                static_cast<unsigned long long>(digest), bytes.size());
  }
}

// ---------------------------------------------------------------------------
// The v4 lossy additions. Two contracts frozen here:
//  1. The PHL2 container (and the RLE1 optional field inside its embedded
//     PHF3 stream) serializes to stable bytes — the fused format is now
//     on disk.
//  2. A PHF3 container *without* RLE stays byte-identical to the pre-RLE1
//     serializer: adding the optional field must not move a single byte
//     of streams that don't carry it (the GAP1 evolution rule).

/// Deterministic field whose fused container carries both RLE runs and a
/// residual stream: a structured prefix over a constant bulk. No RNG — the
/// bytes must be identical on every build.
std::vector<float> golden_field(data::Dims dims) {
  std::vector<float> f(dims.total(), 4.5f);
  for (std::size_t i = 0; i < f.size() / 4; ++i) {
    f[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.05) * 3.0);
  }
  return f;
}

TEST(Golden, LossyFusedContainerBytesAreStable) {
  const data::Dims dims{24, 24, 16};
  lossy::FusedConfig cfg;
  cfg.abs_error_bound = 0.01;
  cfg.nbins = 256;
  cfg.rle_min_run = 64;
  cfg.pipeline.magnitude = 8;
  cfg.pipeline.reduce_factor = 2;
  lossy::FusedReport rep;
  const auto bytes =
      lossy::compress_field_fused(golden_field(dims), dims, cfg, &rep);
  ASSERT_GE(rep.rle_runs, 1u);  // the digest must cover RLE1 bytes

  // Self-consistency first (protects the digest's meaning).
  const auto back = lossy::decompress_field(bytes);
  ASSERT_EQ(back.values.size(), dims.total());

  const u64 digest = fnv1a(bytes);
  constexpr u64 kGoldenDigest = 0xfd830d0bff914f00ull;
  if (kGoldenDigest != 0) {
    EXPECT_EQ(digest, kGoldenDigest)
        << "PHL2 container bytes changed; if intentional, bump the magic "
           "and refresh kGoldenDigest (new value: 0x" << std::hex << digest
        << ")";
  } else {
    std::printf("golden lossy digest: 0x%016llx size=%zu\n",
                static_cast<unsigned long long>(digest), bytes.size());
  }
}

TEST(Golden, RleFieldByteLayoutIsPinned) {
  // Walk the serialized RLE1 field by hand, offset arithmetic and all —
  // this is the byte-layout contract readers of every future version must
  // honor: tag 'RLE1' | u64 len | { u32 run_symbol | u64 orig_symbols |
  // u64 n_runs | u64 pos[n] asc | u32 len[n] } | u64 fnv1a digest.
  const data::Dims dims{24, 24, 16};
  lossy::FusedConfig cfg;
  cfg.abs_error_bound = 0.01;
  cfg.nbins = 256;
  cfg.rle_min_run = 64;
  lossy::FusedReport rep;
  const auto bytes =
      lossy::compress_field_fused(golden_field(dims), dims, cfg, &rep);

  static constexpr u8 kTag[4] = {'R', 'L', 'E', '1'};
  const auto it =
      std::search(bytes.begin(), bytes.end(), std::begin(kTag), std::end(kTag));
  ASSERT_NE(it, bytes.end());
  const std::size_t tag_at = static_cast<std::size_t>(it - bytes.begin());

  u64 field_len = 0;
  std::memcpy(&field_len, bytes.data() + tag_at + 4, 8);
  const std::size_t payload_at = tag_at + 12;
  ASSERT_LE(payload_at + field_len + 8, bytes.size());

  u32 run_symbol = 0;
  u64 orig_symbols = 0, n_runs = 0;
  std::memcpy(&run_symbol, bytes.data() + payload_at, 4);
  std::memcpy(&orig_symbols, bytes.data() + payload_at + 4, 8);
  std::memcpy(&n_runs, bytes.data() + payload_at + 12, 8);
  EXPECT_EQ(run_symbol, cfg.nbins / 2);  // the perfect-prediction code
  EXPECT_EQ(orig_symbols, dims.total());
  EXPECT_EQ(n_runs, rep.rle_runs);
  EXPECT_EQ(field_len, 20 + n_runs * 12);  // fixed part + pos[] + len[]

  // Runs: ascending, non-overlapping, each >= rle_min_run, summing to the
  // report's extracted-symbol count.
  u64 prev_end = 0, total_run = 0;
  for (u64 i = 0; i < n_runs; ++i) {
    u64 pos = 0;
    u32 len = 0;
    std::memcpy(&pos, bytes.data() + payload_at + 20 + i * 8, 8);
    std::memcpy(&len, bytes.data() + payload_at + 20 + n_runs * 8 + i * 4, 4);
    EXPECT_GE(len, cfg.rle_min_run);
    if (i > 0) {
      EXPECT_GE(pos, prev_end);
    }
    prev_end = pos + len;
    total_run += len;
  }
  EXPECT_EQ(total_run, rep.rle_run_symbols);
  EXPECT_LE(prev_end, orig_symbols);

  // The per-field digest is fnv1a over the payload alone.
  u64 stored = 0;
  std::memcpy(&stored, bytes.data() + payload_at + field_len, 8);
  EXPECT_EQ(stored, fnv1a(std::span<const u8>(bytes.data() + payload_at,
                                              field_len)));
}

TEST(Golden, Phf3WithoutRleStaysByteIdentical) {
  // A gap-annotated container that carries no RLE field must serialize
  // exactly as it did before RLE1 existed: same magic, same field count,
  // same digest. This is the format-evolution promise that lets old
  // readers keep working on new writers' RLE-less output.
  PipelineConfig cfg;
  cfg.nbins = 16;
  cfg.magnitude = 8;
  cfg.encoder = EncoderKind::kReduceShuffleSimt;
  cfg.reduce_factor = 2;
  cfg.gap_subseq_bits = 1024;
  const auto input = golden_input();
  const auto bytes = serialize(compress<u8>(input, cfg));
  ASSERT_EQ(std::memcmp(bytes.data(), "PHF3", 4), 0);
  EXPECT_EQ(decompress(deserialize<u8>(bytes)), input);

  // No RLE1 tag anywhere in the container.
  static constexpr u8 kTag[4] = {'R', 'L', 'E', '1'};
  EXPECT_EQ(std::search(bytes.begin(), bytes.end(), std::begin(kTag),
                        std::end(kTag)),
            bytes.end());

  const u64 digest = fnv1a(bytes);
  constexpr u64 kGoldenDigest = 0xd8f470fb07a2fa67ull;
  if (kGoldenDigest != 0) {
    EXPECT_EQ(digest, kGoldenDigest)
        << "PHF3-without-RLE bytes changed — the optional-field evolution "
           "rule is violated (new value: 0x" << std::hex << digest << ")";
  } else {
    std::printf("golden phf3 digest: 0x%016llx size=%zu\n",
                static_cast<unsigned long long>(digest), bytes.size());
  }
}

TEST(Golden, HotSwappedBookSerializesIdenticallyToColdBuild) {
  // The adaptive lifecycle's hot-swap path (svc/codebook_manager.hpp)
  // feeds build_codebook a rounded snapshot of its traffic window. With
  // window_decay = 0 the window IS the last batch's integral histogram,
  // and round_window() must hand it back exactly — so the swapped-in book,
  // encoded and gap-annotated into a PHF3 container, must serialize byte
  // for byte like a book built cold from the same histogram. Any rounding
  // or normalization sneaking into the swap path breaks this pin.
  PipelineConfig cfg;
  cfg.nbins = 64;
  cfg.codebook = CodebookKind::kSerialTree;
  proptest::DriftSpec spec;
  const proptest::DriftSource src(spec, proptest::case_seed(0x901dful, 1));
  const std::vector<u64> h0 = src.histogram(0);
  const std::vector<u64> last = src.histogram(spec.batches - 1);

  svc::AdaptivePolicy policy;
  policy.enabled = true;
  policy.window_decay = 0;  // window == latest batch, exactly integral
  policy.min_window_symbols = 256;
  policy.divergence_high_bits = 0.02;
  policy.divergence_low_bits = 0.01;
  policy.max_rebuilds_per_period = 0;

  svc::CodebookCache cache;
  WorkStealExecutor pool(2);
  util::VirtualClock vc;
  svc::CodebookManager mgr(policy, cache, pool, vc);
  const svc::Fingerprint fp =
      svc::fingerprint_histogram(h0, svc::cache_seed(cfg));
  const auto book0 = std::make_shared<const Codebook>(build_codebook(h0, cfg));
  cache.insert(fp, book0);
  mgr.observe(fp, h0, book0, cfg, false);
  mgr.observe(fp, last, book0, cfg, true);
  mgr.quiesce();
  ASSERT_EQ(mgr.counters().rebuilds_applied, 1u);
  const std::shared_ptr<const Codebook> swapped = cache.find(fp);
  ASSERT_NE(swapped, nullptr);
  ASSERT_NE(swapped.get(), book0.get()) << "the swap never landed";

  const Codebook cold = build_codebook(last, cfg);
  const std::vector<u16> data = src.batch<u16>(spec.batches - 1);
  auto phf3_bytes = [&](const Codebook& cb) {
    Compressed<u16> blob;
    blob.codebook = cb;
    blob.stream = encode_reduceshuffle_simt<u16>(
        data, cb, ReduceShuffleConfig{8, 2}, nullptr, nullptr);
    annotate_gaps(blob.stream, cb, 1024);
    return serialize(blob);
  };
  const std::vector<u8> hot = phf3_bytes(*swapped);
  const std::vector<u8> cold_bytes = phf3_bytes(cold);
  ASSERT_EQ(std::memcmp(hot.data(), "PHF3", 4), 0);
  EXPECT_EQ(hot, cold_bytes)
      << "hot-swapped book's container diverged from the cold build";
  EXPECT_EQ(decompress(deserialize<u16>(hot), 2), data);
}

}  // namespace
}  // namespace parhuff
