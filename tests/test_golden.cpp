// Format stability: a fixed input must serialize to the same bytes on
// every build (the on-disk format is a compatibility contract). If a
// deliberate format change breaks this test, bump the container magic and
// refresh the golden digest.
#include <gtest/gtest.h>

#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "util/hash.hpp"

namespace parhuff {
namespace {

std::vector<u8> golden_input() {
  // Deterministic, structure-rich: runs, alternations, all-of-alphabet.
  std::vector<u8> v;
  for (int rep = 0; rep < 50; ++rep) {
    for (int s = 0; s < 16; ++s) {
      for (int k = 0; k <= s; ++k) v.push_back(static_cast<u8>(s));
    }
  }
  return v;
}

TEST(Golden, ContainerBytesAreStable) {
  PipelineConfig cfg;
  cfg.nbins = 16;
  cfg.magnitude = 8;
  cfg.encoder = EncoderKind::kReduceShuffleSimt;
  cfg.reduce_factor = 2;
  const auto input = golden_input();
  const auto bytes = serialize(compress<u8>(input, cfg));

  // Self-consistency first (protects the digest's meaning).
  EXPECT_EQ(decompress(deserialize<u8>(bytes)), input);

  // The frozen digest of the serialized container. Regenerate with:
  //   printf '0x%016llx\n' <fnv1a of the bytes>
  const u64 digest = fnv1a(bytes);
  constexpr u64 kGoldenDigest = 0x078c76b76780743aull;
  if (kGoldenDigest != 0) {
    EXPECT_EQ(digest, kGoldenDigest)
        << "serialized container changed; if intentional, bump the format "
           "magic and refresh kGoldenDigest (new value: 0x" << std::hex
        << digest << ")";
  } else {
    // Bootstrap mode: print the digest so it can be frozen.
    std::printf("golden digest: 0x%016llx size=%zu\n",
                static_cast<unsigned long long>(digest), bytes.size());
  }
}

TEST(Golden, AdaptiveContainerBytesAreStable) {
  PipelineConfig cfg;
  cfg.nbins = 16;
  cfg.magnitude = 8;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  const auto input = golden_input();
  const auto bytes = serialize(compress<u8>(input, cfg));
  EXPECT_EQ(decompress(deserialize<u8>(bytes)), input);
  const u64 digest = fnv1a(bytes);
  constexpr u64 kGoldenDigest = 0xa092c92955cd5187ull;
  if (kGoldenDigest != 0) {
    EXPECT_EQ(digest, kGoldenDigest);
  } else {
    std::printf("golden adaptive digest: 0x%016llx size=%zu\n",
                static_cast<unsigned long long>(digest), bytes.size());
  }
}

}  // namespace
}  // namespace parhuff
