// Protocol-v3 streaming verbs: chunked compress/decompress frames that
// lift the single-frame payload cap. Covers the wire format (stream-id
// slot, End/Summary payloads), the transparent client-side chunker, the
// server's bounded per-stream buffering, typed stream errors
// (unknown/forged ids, checksum and byte-total mismatches, family mixing,
// Begin past the cap), cancel and Begin-anchored deadlines, the
// opened == completed + aborted counter balance, multi-MiB unix-socket
// frames (partial-write resume in write_two), mid-chunk truncation, and
// the full client → router → shard round trip with stream pinning,
// id translation and terminal mid-stream failover.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/streaming.hpp"
#include "obs/metrics.hpp"
#include "router/harness.hpp"
#include "router/router.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "rpc/transport_inmem.hpp"
#include "svc/deadline.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

using rpc::ClientConfig;
using rpc::Frame;
using rpc::Header;
using rpc::Kind;
using rpc::LoopbackHub;
using rpc::Op;
using rpc::ProtocolError;
using rpc::RpcCall;
using rpc::RpcClient;
using rpc::RpcError;
using rpc::RpcOptions;
using rpc::RpcServer;
using rpc::ServerConfig;
using rpc::Status;
using rpc::TransportError;
using util::VirtualClock;

std::vector<u8> ramp_data(std::size_t n, u64 seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/parhuff_stream_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

void send_frame(rpc::Connection& conn, const Frame& f) {
  const std::vector<u8> bytes = rpc::encode_frame(f);
  conn.write_all(bytes.data(), bytes.size());
}

Frame read_frame(rpc::Connection& conn) {
  std::array<u8, rpc::kHeaderBytes> hb;
  if (!conn.read_exact(hb.data(), hb.size())) {
    throw TransportError("test: EOF instead of a frame");
  }
  Frame f;
  f.h = rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(hb),
                           rpc::response_payload_bound(rpc::kMaxPayloadBytes));
  f.payload.resize(f.h.payload_len);
  if (f.h.payload_len > 0 &&
      !conn.read_exact(f.payload.data(), f.payload.size())) {
    throw TransportError("test: EOF mid-payload");
  }
  return f;
}

bool is_phs2(std::span<const u8> bytes) {
  return bytes.size() >= 4 &&
         std::memcmp(bytes.data(), kStreamHeaderMagic, 4) == 0;
}

/// Client config with deliberately tiny bounds so a few hundred KiB is
/// enough to exercise the whole chunked path.
ClientConfig small_stream_config() {
  ClientConfig cc;
  cc.max_payload_bytes = 64 * 1024;
  cc.stream_chunk_bytes = 16 * 1024;
  return cc;
}

ServerConfig small_stream_server() {
  ServerConfig sc;
  sc.stream_chunk_bytes = 64 * 1024;
  return sc;
}

// --- Wire format. ------------------------------------------------------------

TEST(StreamProtocol, RefOpsCarryStreamIdInTheDeadlineSlot) {
  Header h;
  h.op = Op::kCompressStreamChunk;
  h.request_id = 1234;
  h.stream_id = 0xfeedfacecafef00dull;
  h.deadline_micros = 999;  // ignored on ref ops: the slot is the id
  const auto bytes = rpc::encode_header(h);
  const Header d =
      rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes));
  EXPECT_EQ(d.op, Op::kCompressStreamChunk);
  EXPECT_EQ(d.stream_id, h.stream_id);
  EXPECT_EQ(d.deadline_micros, 0u);  // ref frames have no deadline
}

TEST(StreamProtocol, BeginOpsKeepTheDeadlineSemantics) {
  Header h;
  h.op = Op::kDecompressStreamBegin;
  h.deadline_micros = 5'000'000;
  const auto bytes = rpc::encode_header(h);
  const Header d =
      rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(bytes));
  EXPECT_EQ(d.deadline_micros, 5'000'000u);
  EXPECT_EQ(d.stream_id, 0u);
}

TEST(StreamProtocol, EndRequestAndSummaryRoundTrip) {
  const rpc::StreamEndRequest req{123456789, 0xabcdef0123456789ull};
  const auto req_bytes = rpc::encode_stream_end_request(req);
  ASSERT_EQ(req_bytes.size(), rpc::kStreamEndRequestBytes);
  const rpc::StreamEndRequest back =
      rpc::decode_stream_end_request(std::span<const u8>(req_bytes));
  EXPECT_EQ(back.total_bytes, req.total_bytes);
  EXPECT_EQ(back.checksum, req.checksum);

  const rpc::StreamSummary sum{11, 22, 33};
  const auto sum_bytes = rpc::encode_stream_summary(sum);
  ASSERT_EQ(sum_bytes.size(), rpc::kStreamSummaryBytes);
  const rpc::StreamSummary sback =
      rpc::decode_stream_summary(std::span<const u8>(sum_bytes));
  EXPECT_EQ(sback.bytes_in, 11u);
  EXPECT_EQ(sback.bytes_out, 22u);
  EXPECT_EQ(sback.checksum, 33u);
}

TEST(StreamProtocol, ShortEndAndSummaryPayloadsThrowTyped) {
  const std::vector<u8> short_bytes(7, 0);
  EXPECT_THROW(
      (void)rpc::decode_stream_end_request(std::span<const u8>(short_bytes)),
      ProtocolError);
  EXPECT_THROW(
      (void)rpc::decode_stream_summary(std::span<const u8>(short_bytes)),
      ProtocolError);
}

// --- Transparent chunking, loopback. -----------------------------------------

TEST(RpcStream, TransparentChunkedRoundTripLiftsTheCap) {
  LoopbackHub hub;
  RpcServer server(hub.listener(), small_stream_server());
  RpcClient cli([&] { return hub.connect(); }, small_stream_config());

  // 5x the single-frame cap: impossible as one frame, transparent as a
  // stream. The container comes back as a PHS2 streamed container.
  const auto data = ramp_data(320 * 1024);
  const std::vector<u8> container =
      cli.compress(std::vector<u8>(data)).result.get();
  ASSERT_TRUE(is_phs2(std::span<const u8>(container)));

  const std::vector<u8> round =
      cli.decompress(std::vector<u8>(container)).result.get();
  EXPECT_EQ(round, data);

  // Bounded buffering: the server never held more than a chunk-scale
  // pending buffer, no matter the total streamed size.
  EXPECT_LE(server.stream_buffer_high_water(),
            u64{64 * 1024} + (1u << 20) + u64{16 * 1024});
}

TEST(RpcStream, SixteenBitSymbolsStreamRoundTrip) {
  LoopbackHub hub;
  RpcServer server(hub.listener(), small_stream_server());
  RpcClient cli([&] { return hub.connect(); }, small_stream_config());

  Xoshiro256 rng(23);
  std::vector<u16> data(150 * 1024);
  for (auto& s : data) s = static_cast<u16>(rng.below(40000));
  std::vector<u8> raw(data.size() * 2);
  std::memcpy(raw.data(), data.data(), raw.size());

  const std::vector<u8> container =
      cli.compress(std::vector<u8>(raw), 2).result.get();
  ASSERT_TRUE(is_phs2(std::span<const u8>(container)));
  EXPECT_EQ(cli.decompress(std::vector<u8>(container), 2).result.get(), raw);
}

TEST(RpcStream, SpanOverloadStillStreamsViaOneCopy) {
  LoopbackHub hub;
  RpcServer server(hub.listener(), small_stream_server());
  RpcClient cli([&] { return hub.connect(); }, small_stream_config());

  const auto data = ramp_data(200 * 1024, 5);
  const std::vector<u8> container =
      cli.compress(std::span<const u8>(data)).result.get();
  EXPECT_EQ(cli.decompress(std::span<const u8>(container)).result.get(),
            data);
}

TEST(RpcStream, ManualVerbsChecksumAndSummary) {
  LoopbackHub hub;
  RpcServer server(hub.listener(), small_stream_server());
  RpcClient cli([&] { return hub.connect(); }, small_stream_config());

  const auto data = ramp_data(40 * 1024, 9);
  RpcCall begin = cli.stream_begin(Op::kCompressStreamBegin, 1);
  const std::vector<u8> sid_bytes = begin.result.get();
  ASSERT_EQ(sid_bytes.size(), 8u);
  u64 sid = 0;
  std::memcpy(&sid, sid_bytes.data(), 8);

  std::vector<u8> container;
  u64 checksum = kFnv1aSeed;
  const std::size_t half = data.size() / 2;
  for (const auto piece :
       {std::span<const u8>(data.data(), half),
        std::span<const u8>(data.data() + half, data.size() - half)}) {
    checksum = stream_checksum(piece, checksum);
    const std::vector<u8> ack =
        cli.stream_frame(Op::kCompressStreamChunk, sid, piece).result.get();
    container.insert(container.end(), ack.begin(), ack.end());
  }

  RpcCall end = cli.stream_end(Op::kCompressStreamEnd, sid, data.size(),
                               checksum);
  const rpc::StreamSummary sum =
      rpc::decode_stream_summary(std::span<const u8>(end.result.get()));
  EXPECT_EQ(sum.bytes_in, data.size());
  EXPECT_EQ(sum.bytes_out, container.size());
  EXPECT_EQ(sum.checksum, checksum);

  ASSERT_TRUE(is_phs2(std::span<const u8>(container)));
  EXPECT_EQ(cli.decompress(std::span<const u8>(container)).result.get(),
            data);
}

// --- The original bug, both sides of the fix. --------------------------------

TEST(RpcStream, OversizedSingleFrameFailsTypedWithoutPoisoning) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  ClientConfig cc;
  cc.max_payload_bytes = 4096;
  cc.enable_streaming = false;  // pre-v3 behavior on purpose
  RpcClient cli([&] { return hub.connect(); }, cc);

  const auto big = ramp_data(8192);
  RpcCall call = cli.compress(std::span<const u8>(big));
  try {
    (void)call.result.get();
    FAIL() << "oversized single-frame submit must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  // The rejection never touched the connection or the pending map: the
  // very next submit on the same client succeeds.
  const auto small = ramp_data(2000);
  const std::vector<u8> container =
      cli.compress(std::span<const u8>(small)).result.get();
  EXPECT_EQ(cli.decompress(std::span<const u8>(container)).result.get(),
            small);
}

TEST(RpcStream, StreamingOnMakesTheSamePayloadWork) {
  LoopbackHub hub;
  RpcServer server(hub.listener(), small_stream_server());
  ClientConfig cc;
  cc.max_payload_bytes = 4096;
  cc.stream_chunk_bytes = 1024;
  RpcClient cli([&] { return hub.connect(); }, cc);

  const auto big = ramp_data(8192);
  const std::vector<u8> container =
      cli.compress(std::vector<u8>(big)).result.get();
  EXPECT_EQ(cli.decompress(std::vector<u8>(container)).result.get(), big);
}

TEST(RpcStream, OversizedMonolithicPhfContainerStillFailsTyped) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  ClientConfig cc;
  cc.max_payload_bytes = 4096;  // streaming on (default) — but PHF can't chunk
  RpcClient cli([&] { return hub.connect(); }, cc);

  std::vector<u8> fake(8192, 0x41);  // not PHS2: no segment boundaries
  RpcCall call = cli.decompress(std::move(fake));
  try {
    (void)call.result.get();
    FAIL() << "oversized non-streamable container must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
  const auto data = ramp_data(1000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
}

// --- Typed stream errors. ----------------------------------------------------

TEST(RpcStream, UnknownStreamIdIsTypedNotFatal) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const auto data = ramp_data(1000);
  RpcCall chunk = cli.stream_frame(Op::kCompressStreamChunk, 424242,
                                   std::span<const u8>(data));
  try {
    (void)chunk.result.get();
    FAIL() << "chunk on a never-opened stream must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
}

TEST(RpcStream, WrongFamilyChunkAbortsTheStream) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const u64 sid = [&] {
    const auto bytes =
        cli.stream_begin(Op::kCompressStreamBegin, 1).result.get();
    u64 s = 0;
    std::memcpy(&s, bytes.data(), 8);
    return s;
  }();
  const auto data = ramp_data(512);
  EXPECT_THROW((void)cli.stream_frame(Op::kDecompressStreamChunk, sid,
                                      std::span<const u8>(data))
                   .result.get(),
               RpcError);
  // The family mismatch was terminal: the id is gone now.
  try {
    (void)cli.stream_frame(Op::kCompressStreamChunk, sid,
                           std::span<const u8>(data))
        .result.get();
    FAIL() << "aborted stream id must be unknown";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST(RpcStream, ChecksumAndByteTotalMismatchesAreTyped) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  const auto data = ramp_data(4096, 31);
  const auto open_and_feed = [&]() {
    const auto bytes =
        cli.stream_begin(Op::kCompressStreamBegin, 1).result.get();
    u64 s = 0;
    std::memcpy(&s, bytes.data(), 8);
    (void)cli.stream_frame(Op::kCompressStreamChunk, s,
                           std::span<const u8>(data))
        .result.get();
    return s;
  };

  const u64 forged_sum = open_and_feed();
  try {
    (void)cli.stream_end(Op::kCompressStreamEnd, forged_sum, data.size(),
                         0xbad)  // wrong checksum
        .result.get();
    FAIL() << "forged checksum must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  const u64 wrong_total = open_and_feed();
  try {
    (void)cli.stream_end(Op::kCompressStreamEnd, wrong_total,
                         data.size() + 1, stream_checksum(std::span<const u8>(data)))
        .result.get();
    FAIL() << "wrong byte total must fail typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST(RpcStream, BeginPastTheConnectionCapIsQueueFull) {
  LoopbackHub hub;
  ServerConfig sc;
  sc.max_streams_per_connection = 1;
  RpcServer server(hub.listener(), sc);
  RpcClient cli([&] { return hub.connect(); });

  RpcCall first = cli.stream_begin(Op::kCompressStreamBegin, 1);
  EXPECT_EQ(first.result.get().size(), 8u);
  try {
    (void)cli.stream_begin(Op::kCompressStreamBegin, 1).result.get();
    FAIL() << "Begin past the stream cap must shed typed";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kQueueFull);
  }
}

TEST(RpcStream, CancelByBeginIdAbortsTheStream) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  RpcClient cli([&] { return hub.connect(); });

  RpcCall begin = cli.stream_begin(Op::kCompressStreamBegin, 1);
  const auto sid_bytes = begin.result.get();
  u64 sid = 0;
  std::memcpy(&sid, sid_bytes.data(), 8);
  cli.cancel(begin.id).get();

  const auto data = ramp_data(512);
  EXPECT_THROW((void)cli.stream_frame(Op::kCompressStreamChunk, sid,
                                      std::span<const u8>(data))
                   .result.get(),
               svc::CancelledError);
}

TEST(RpcStream, DeadlineAnchoredAtBeginCoversEveryChunk) {
  VirtualClock vc;
  LoopbackHub hub;
  ServerConfig sc;
  sc.service.clock = &vc;
  RpcServer server(hub.listener(), sc);
  RpcClient cli([&] { return hub.connect(); });

  RpcOptions opts;
  opts.deadline_seconds = 0.5;  // anchored once, at Begin
  RpcCall begin = cli.stream_begin(Op::kCompressStreamBegin, 1, opts);
  const auto sid_bytes = begin.result.get();
  u64 sid = 0;
  std::memcpy(&sid, sid_bytes.data(), 8);

  vc.advance_seconds(60.0);  // the whole-stream budget is long gone
  const auto data = ramp_data(512);
  EXPECT_THROW((void)cli.stream_frame(Op::kCompressStreamChunk, sid,
                                      std::span<const u8>(data))
                   .result.get(),
               svc::DeadlineExceeded);
}

TEST(RpcStream, CounterBalanceOverGoodBadAndOrphanedStreams) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 opened0 = reg.counter("rpc.streams_opened");
  const u64 completed0 = reg.counter("rpc.streams_completed");
  const u64 aborted0 = reg.counter("rpc.streams_aborted");

  {
    LoopbackHub hub;
    auto server =
        std::make_unique<RpcServer>(hub.listener(), small_stream_server());
    RpcClient cli([&] { return hub.connect(); }, small_stream_config());

    // Clean streams (transparent chunking, completed).
    const auto data = ramp_data(96 * 1024, 77);
    const auto container = cli.compress(std::vector<u8>(data)).result.get();
    EXPECT_EQ(cli.decompress(std::vector<u8>(container)).result.get(), data);

    // An aborted stream (forged checksum at End).
    const auto sid_bytes =
        cli.stream_begin(Op::kCompressStreamBegin, 1).result.get();
    u64 sid = 0;
    std::memcpy(&sid, sid_bytes.data(), 8);
    EXPECT_THROW(
        (void)cli.stream_end(Op::kCompressStreamEnd, sid, 0, 0xbad)
            .result.get(),
        RpcError);

    // An orphaned stream: opened, never finished — connection teardown
    // must count it aborted.
    (void)cli.stream_begin(Op::kDecompressStreamBegin, 1).result.get();
    server->stop();
  }

  const u64 opened = reg.counter("rpc.streams_opened") - opened0;
  const u64 completed = reg.counter("rpc.streams_completed") - completed0;
  const u64 aborted = reg.counter("rpc.streams_aborted") - aborted0;
  EXPECT_GE(opened, 4u);  // 2 transparent + 2 manual
  EXPECT_EQ(opened, completed + aborted);
  EXPECT_GE(aborted, 2u);  // the forged End + the orphan
}

// --- Transport: multi-MiB frames and mid-chunk truncation. -------------------

TEST(UnixStream, MultiMiBFrameSurvivesPartialWrites) {
  // 8 MiB through a unix socketpair-sized kernel buffer: write_two's
  // partial-write resume (short write inside either iovec, exactly on the
  // header/payload boundary, EINTR rebuilds) is the only way this arrives
  // byte-exact.
  const std::string path = unique_socket_path("bigframe");
  auto listener = rpc::listen_unix(path);

  const std::size_t kBytes = 8 * 1024 * 1024;
  std::vector<u8> got;
  Header got_h;
  std::thread srv([&] {
    auto conn = listener->accept();
    ASSERT_NE(conn, nullptr);
    std::array<u8, rpc::kHeaderBytes> hb;
    ASSERT_TRUE(conn->read_exact(hb.data(), hb.size()));
    got_h = rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(hb));
    got.resize(got_h.payload_len);
    ASSERT_TRUE(conn->read_exact(got.data(), got.size()));
  });

  auto cli = rpc::connect_unix(path);
  Frame f;
  f.h.op = Op::kCompressStreamChunk;
  f.h.request_id = 7;
  f.h.stream_id = 99;
  f.payload = ramp_data(kBytes, 1234);
  rpc::write_frame(*cli, f);
  srv.join();

  EXPECT_EQ(got_h.stream_id, 99u);
  EXPECT_EQ(got, f.payload);
  ::unlink(path.c_str());
}

TEST(RpcStream, MidChunkTruncationDropsConnectionServerSurvives) {
  LoopbackHub hub;
  RpcServer server(hub.listener());
  {
    auto conn = hub.connect();
    Frame begin;
    begin.h.op = Op::kCompressStreamBegin;
    begin.h.sym_width = 1;
    begin.h.request_id = 1;
    send_frame(*conn, begin);
    const Frame ack = read_frame(*conn);
    ASSERT_EQ(ack.h.status, Status::kOk);

    // A chunk that declares 1000 payload bytes but delivers 100, then
    // dies: the reader's mid-payload EOF must drop the connection (and
    // teardown must count the open stream aborted), never stall.
    Frame chunk;
    chunk.h.op = Op::kCompressStreamChunk;
    chunk.h.request_id = 2;
    std::memcpy(&chunk.h.stream_id, ack.payload.data(), 8);
    chunk.payload.resize(1000, 0x33);
    const std::vector<u8> bytes = rpc::encode_frame(chunk);
    conn->write_all(bytes.data(), rpc::kHeaderBytes + 100);
    conn->shutdown();
  }

  // The server keeps serving fresh clients afterwards.
  RpcClient cli([&] { return hub.connect(); });
  const auto data = ramp_data(2000);
  EXPECT_FALSE(cli.compress(std::span<const u8>(data)).result.get().empty());
}

// --- Router: pinning, translation, terminal mid-stream failover. -------------

TEST(RouterStream, StreamsRoundTripAcrossAMultiShardFleet) {
  router::ShardHarness shards(3, small_stream_server());
  LoopbackHub front;
  router::RouterConfig rc;
  rc.start_prober = false;
  rc.client = small_stream_config();
  router::ShardRouter rtr(front.listener(), shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); }, small_stream_config());

  // Two concurrent streams: their chunks interleave on the router
  // connection under distinct client-facing ids, and each stays pinned to
  // the single shard that holds its codec state (a chunk landing anywhere
  // else would answer unknown-stream and break the round trip).
  const auto a = ramp_data(200 * 1024, 41);
  const auto b = ramp_data(160 * 1024, 42);
  RpcCall ca = cli.compress(std::vector<u8>(a));
  RpcCall cb = cli.compress(std::vector<u8>(b));
  const std::vector<u8> container_a = ca.result.get();
  const std::vector<u8> container_b = cb.result.get();
  ASSERT_TRUE(is_phs2(std::span<const u8>(container_a)));
  EXPECT_EQ(cli.decompress(std::vector<u8>(container_a)).result.get(), a);
  EXPECT_EQ(cli.decompress(std::vector<u8>(container_b)).result.get(), b);
}

TEST(RouterStream, MidStreamShardLossIsTerminalAndTyped) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 aborted0 = reg.counter("router.streams_aborted");

  router::ShardHarness shards(1);
  LoopbackHub front;
  router::RouterConfig rc;
  rc.start_prober = false;
  router::ShardRouter rtr(front.listener(), shards.endpoints(), rc);
  RpcClient cli([&] { return front.connect(); });

  const auto sid_bytes =
      cli.stream_begin(Op::kCompressStreamBegin, 1).result.get();
  u64 sid = 0;
  std::memcpy(&sid, sid_bytes.data(), 8);
  const auto data = ramp_data(4096, 55);
  EXPECT_FALSE(cli.stream_frame(Op::kCompressStreamChunk, sid,
                                std::span<const u8>(data))
                   .result.get()
                   .empty());

  shards.kill(0);
  // The next chunk hits the dead shard: terminal, typed — never replayed
  // onto another shard (which never saw the earlier chunks).
  EXPECT_THROW((void)cli.stream_frame(Op::kCompressStreamChunk, sid,
                                      std::span<const u8>(data))
                   .result.get(),
               RpcError);
  // And the id is gone: the stream cannot be resumed.
  try {
    (void)cli.stream_frame(Op::kCompressStreamChunk, sid,
                           std::span<const u8>(data))
        .result.get();
    FAIL() << "terminated stream id must be unknown";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
  EXPECT_EQ(reg.counter("router.streams_aborted") - aborted0, 1u);
}

TEST(RouterStream, ClientTeardownReapsShardStreamState) {
  router::ShardHarness shards(1);  // default cap: 4 streams per connection
  LoopbackHub front;
  router::RouterConfig rc;
  rc.start_prober = false;
  router::ShardRouter rtr(front.listener(), shards.endpoints(), rc);

  // Orphan more streams than the shard's per-connection cap: each client
  // opens a stream and dies without End. The router's teardown must force
  // the shard's half closed (poisoned End) or the cap would wedge every
  // later Begin with kQueueFull.
  for (int i = 0; i < 8; ++i) {
    RpcClient cli([&] { return front.connect(); });
    const auto sid_bytes =
        cli.stream_begin(Op::kCompressStreamBegin, 1).result.get();
    ASSERT_EQ(sid_bytes.size(), 8u);
  }

  RpcClient cli([&] { return front.connect(); }, small_stream_config());
  const auto data = ramp_data(100 * 1024, 66);
  std::vector<u8> container;
  // The reap is asynchronous (fire-and-forget poisoned End): retry
  // briefly instead of assuming it landed before our Begin.
  for (int attempt = 0;; ++attempt) {
    try {
      container = cli.compress(std::vector<u8>(data)).result.get();
      break;
    } catch (const RpcError& e) {
      ASSERT_EQ(e.status(), Status::kQueueFull);
      ASSERT_LT(attempt, 100) << "orphaned streams were never reaped";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(cli.decompress(std::vector<u8>(container)).result.get(), data);
}

// --- The acceptance path: a payload far past the old cap, end to end. --------
//
// Default 256 MiB (the paper-scale case the 64 MiB cap broke); override
// with PARHUFF_STREAM_BYTES for slower instrumented builds (CI sets 8 MiB
// under TSan/ASan).

TEST(RouterStream, HugePayloadRoundTripsOverUnixSockets) {
  std::size_t bytes = 256ull * 1024 * 1024;
  if (const char* env = std::getenv("PARHUFF_STREAM_BYTES")) {
    bytes = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    ASSERT_GT(bytes, 0u);
  }

  const std::string s0 = unique_socket_path("shard0");
  const std::string s1 = unique_socket_path("shard1");
  const std::string rp = unique_socket_path("router");
  ServerConfig sc;  // default 4 MiB chunks, 64 MiB frame cap
  RpcServer shard0(rpc::listen_unix(s0), sc);
  RpcServer shard1(rpc::listen_unix(s1), sc);
  std::vector<router::ShardEndpoint> eps;
  eps.push_back({"s0", [s0] { return rpc::connect_unix(s0); }});
  eps.push_back({"s1", [s1] { return rpc::connect_unix(s1); }});
  router::RouterConfig rc;
  rc.start_prober = false;
  router::ShardRouter rtr(rpc::listen_unix(rp), std::move(eps), rc);

  ClientConfig cc;
  // Stream anything past one chunk; scale the threshold down with small
  // PARHUFF_STREAM_BYTES overrides so the payload always takes the
  // streamed path regardless of the configured size.
  cc.stream_threshold_bytes = static_cast<u32>(
      std::min<std::size_t>(4u << 20, std::max<std::size_t>(bytes / 4, 1)));
  RpcClient cli([rp] { return rpc::connect_unix(rp); }, cc);

  auto& reg = obs::MetricsRegistry::global();
  const u64 opened0 = reg.counter("router.streams_opened");
  const u64 completed0 = reg.counter("router.streams_completed");

  const auto data = ramp_data(bytes, 2026);
  const std::vector<u8> container =
      cli.compress(std::vector<u8>(data)).result.get();
  ASSERT_TRUE(is_phs2(std::span<const u8>(container)));
  const std::vector<u8> round =
      cli.decompress(std::vector<u8>(container)).result.get();
  ASSERT_EQ(round.size(), data.size());
  EXPECT_EQ(round, data);

  // Server-side buffering stayed chunk-scale while hundreds of MiB
  // streamed through: the bounded-memory contract, test-asserted.
  const u64 bound = u64{sc.stream_chunk_bytes} + (1u << 20) + (4u << 20);
  EXPECT_LE(shard0.stream_buffer_high_water(), bound);
  EXPECT_LE(shard1.stream_buffer_high_water(), bound);

  // Both streams (compress + decompress) opened and completed cleanly
  // through the router.
  EXPECT_EQ(reg.counter("router.streams_opened") - opened0, 2u);
  EXPECT_EQ(reg.counter("router.streams_completed") - completed0, 2u);

  ::unlink(s0.c_str());
  ::unlink(s1.c_str());
  ::unlink(rp.c_str());
}

}  // namespace
}  // namespace parhuff
