// Canonical codebook: canonize_from_lengths invariants, validate()'s
// ability to catch corruption, Kraft enforcement.
#include <gtest/gtest.h>

#include <vector>

#include "core/canonical.hpp"
#include "core/tree.hpp"
#include "data/synth_hist.hpp"

namespace parhuff {
namespace {

TEST(Canonize, SimpleKnownCode) {
  // Lengths {1, 2, 3, 3}: canonical codes 0, 10, 110, 111.
  std::vector<u8> lens = {1, 2, 3, 3};
  Codebook cb = canonize_from_lengths(lens);
  EXPECT_EQ(cb.validate(), "");
  EXPECT_EQ(cb.cw[0], (Codeword{0b0, 1}));
  EXPECT_EQ(cb.cw[1], (Codeword{0b10, 2}));
  EXPECT_EQ(cb.cw[2], (Codeword{0b110, 3}));
  EXPECT_EQ(cb.cw[3], (Codeword{0b111, 3}));
  EXPECT_EQ(cb.sorted_syms, (std::vector<u32>{0, 1, 2, 3}));
}

TEST(Canonize, WithinLevelSymbolAscending) {
  std::vector<u8> lens = {2, 2, 2, 2};
  Codebook cb = canonize_from_lengths(lens);
  for (u32 s = 0; s < 4; ++s) {
    EXPECT_EQ(cb.cw[s].bits, s);
  }
}

TEST(Canonize, SkippedLevels) {
  // Lengths {1, 3, 3, 3, 4, 4}: level 2 empty, Kraft-complete.
  std::vector<u8> lens = {1, 3, 3, 3, 4, 4};
  Codebook cb = canonize_from_lengths(lens);
  EXPECT_EQ(cb.validate(), "");
  EXPECT_EQ(cb.cw[0], (Codeword{0b0, 1}));
  EXPECT_EQ(cb.cw[1], (Codeword{0b100, 3}));
  EXPECT_EQ(cb.cw[2], (Codeword{0b101, 3}));
  EXPECT_EQ(cb.cw[3], (Codeword{0b110, 3}));
  EXPECT_EQ(cb.cw[4], (Codeword{0b1110, 4}));
  EXPECT_EQ(cb.cw[5], (Codeword{0b1111, 4}));
}

TEST(Canonize, KraftIncompleteThrows) {
  // {1, 3, 3} leaves a hole at 4 → incomplete code.
  std::vector<u8> lens = {1, 3, 3};
  EXPECT_THROW((void)canonize_from_lengths(lens), std::invalid_argument);
}

TEST(Canonize, KraftViolationThrows) {
  std::vector<u8> lens = {1, 1, 2};
  EXPECT_THROW((void)canonize_from_lengths(lens), std::invalid_argument);
}

TEST(Canonize, SingleSymbolIncompleteAllowed) {
  std::vector<u8> lens = {0, 1, 0};
  Codebook cb = canonize_from_lengths(lens);
  EXPECT_EQ(cb.validate(), "");
  EXPECT_EQ(cb.cw[1], (Codeword{0, 1}));
}

TEST(Canonize, EmptyLengths) {
  std::vector<u8> lens(8, 0);
  Codebook cb = canonize_from_lengths(lens);
  EXPECT_EQ(cb.present_symbols(), 0u);
  EXPECT_EQ(cb.validate(), "");
}

TEST(Canonize, TooLongThrows) {
  std::vector<u8> lens = {60, 60};
  EXPECT_THROW((void)canonize_from_lengths(lens), std::invalid_argument);
}

TEST(Canonize, RoundTripsThroughTreeBuilder) {
  for (int seed = 0; seed < 8; ++seed) {
    auto freq = data::zipf_histogram(400, 1.15, 1 << 20,
                                     static_cast<u64>(seed));
    auto lens = build_lengths_twoqueue(freq);
    Codebook cb = canonize_from_lengths(lens);
    ASSERT_EQ(cb.validate(), "");
    // Lengths preserved exactly (canonization never changes bitwidths).
    for (std::size_t s = 0; s < lens.size(); ++s) {
      ASSERT_EQ(cb.cw[s].len, lens[s]);
    }
  }
}

TEST(Validate, CatchesForwardTableCorruption) {
  Codebook cb = canonize_from_lengths(std::vector<u8>{2, 2, 2, 2});
  cb.cw[1].bits = 3;  // duplicate of symbol 3's code
  EXPECT_NE(cb.validate(), "");
}

TEST(Validate, CatchesEntryCorruption) {
  Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  cb.entry[2] += 1;
  EXPECT_NE(cb.validate(), "");
}

TEST(Validate, CatchesFirstCorruption) {
  Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  cb.first[3] += 1;
  EXPECT_NE(cb.validate(), "");
}

TEST(Validate, CatchesReverseTableCorruption) {
  Codebook cb = canonize_from_lengths(std::vector<u8>{2, 2, 2, 2});
  std::swap(cb.sorted_syms[0], cb.sorted_syms[1]);
  EXPECT_NE(cb.validate(), "");
}

TEST(Codebook, AverageBits) {
  Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  std::vector<u64> freq = {8, 4, 2, 2};
  // (8*1 + 4*2 + 2*3 + 2*3) / 16 = 28/16
  EXPECT_DOUBLE_EQ(cb.average_bits(freq), 28.0 / 16.0);
}

TEST(Codebook, OpCountExposedForModeling) {
  (void)canonize_from_lengths(std::vector<u8>{1, 2, 3, 3});
  EXPECT_GT(canonize_last_op_count(), 0u);
}

}  // namespace
}  // namespace parhuff
