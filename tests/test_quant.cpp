// Mini-SZ quantizer substrate: the error-bound guarantee, outlier handling,
// reconstruction round trip, and the Nyx-Quant statistical profile.
#include <gtest/gtest.h>

#include <cmath>

#include "data/quant.hpp"
#include "core/entropy.hpp"

namespace parhuff {
namespace {

using data::Dims;

TEST(Quantizer, ErrorBoundHolds) {
  const Dims dims{32, 32, 32};
  const auto field = data::generate_cosmo_field(dims, 11);
  for (const double eb : {1e-1, 1e-2, 1e-3}) {
    const auto q = data::lorenzo_quantize(field, dims, eb, 1024);
    const auto recon = data::lorenzo_reconstruct(q);
    ASSERT_EQ(recon.size(), field.size());
    double worst = 0;
    for (std::size_t i = 0; i < field.size(); ++i) {
      worst = std::max(
          worst, std::abs(static_cast<double>(field[i]) -
                          static_cast<double>(recon[i])));
    }
    // Outliers are exact; quantized values within eb (plus float rounding).
    EXPECT_LE(worst, eb * 1.0001) << "eb=" << eb;
  }
}

TEST(Quantizer, TighterBoundMoreOutliersOrCodes) {
  const Dims dims{24, 24, 24};
  const auto field = data::generate_cosmo_field(dims, 3);
  const auto loose = data::lorenzo_quantize(field, dims, 1e-1, 64);
  const auto tight = data::lorenzo_quantize(field, dims, 1e-4, 64);
  EXPECT_GE(tight.outliers.size(), loose.outliers.size());
}

TEST(Quantizer, CodesStayInRange) {
  const Dims dims{16, 16, 16};
  const auto field = data::generate_cosmo_field(dims, 5);
  const auto q = data::lorenzo_quantize(field, dims, 1e-2, 256);
  for (u16 c : q.codes) EXPECT_LT(c, 256);
}

TEST(Quantizer, RejectsBadParameters) {
  const Dims dims{4, 4, 4};
  const auto field = data::generate_cosmo_field(dims, 1);
  EXPECT_THROW((void)data::lorenzo_quantize(field, dims, 0.0, 256),
               std::invalid_argument);
  EXPECT_THROW((void)data::lorenzo_quantize(field, Dims{5, 4, 4}, 1e-2, 256),
               std::invalid_argument);
  EXPECT_THROW((void)data::lorenzo_quantize(field, dims, 1e-2, 2),
               std::invalid_argument);
}

TEST(Quantizer, DeterministicInSeed) {
  const Dims dims{16, 16, 16};
  const auto a = data::generate_cosmo_field(dims, 77);
  const auto b = data::generate_cosmo_field(dims, 77);
  const auto c = data::generate_cosmo_field(dims, 78);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Quantizer, TwoDimensionalFields) {
  // dims {nx, ny, 1}: the predictor degenerates to the 2-D Lorenzo
  // stencil (left + up - upleft). SZ treats 2-D slices exactly this way.
  const Dims dims{64, 64, 1};
  std::vector<float> field(dims.total());
  for (std::size_t y = 0; y < dims.ny; ++y) {
    for (std::size_t x = 0; x < dims.nx; ++x) {
      field[y * dims.nx + x] =
          static_cast<float>(std::sin(x * 0.1) * std::cos(y * 0.07));
    }
  }
  const double eb = 1e-2;
  const auto q = data::lorenzo_quantize(field, dims, eb, 256);
  const auto recon = data::lorenzo_reconstruct(q);
  double worst = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(field[i]) -
                                     static_cast<double>(recon[i])));
  }
  EXPECT_LE(worst, eb * 1.0001);
  // Smooth 2-D data: the center bin dominates.
  std::size_t center = 0;
  for (u16 c : q.codes) center += c == 128 ? 1 : 0;
  EXPECT_GT(static_cast<double>(center) / q.codes.size(), 0.5);
}

TEST(Quantizer, OneDimensionalSeries) {
  // dims {n, 1, 1}: plain 1-D delta prediction — time-series mode.
  const Dims dims{4096, 1, 1};
  std::vector<float> series(dims.total());
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<float>(10.0 * std::sin(i * 0.01) + 0.5 * i * 0.001);
  }
  const double eb = 1e-2;
  const auto q = data::lorenzo_quantize(series, dims, eb, 512);
  const auto recon = data::lorenzo_reconstruct(q);
  for (std::size_t i = 0; i < series.size(); ++i) {
    ASSERT_LE(std::abs(static_cast<double>(series[i]) -
                       static_cast<double>(recon[i])),
              eb * 1.0001);
  }
}

TEST(NyxQuant, ProfileMatchesPaper) {
  // The paper's Nyx-Quant: 1024 bins, avg Huffman bits ≈ 1.03 — i.e. the
  // center bin dominates. Check entropy lands in the right band.
  const auto codes = data::generate_nyx_quant(1 << 20, 42);
  std::vector<u64> h(1024, 0);
  for (u16 c : codes) ++h[c];
  const double ent = shannon_entropy(h);
  EXPECT_GT(ent, 0.05);
  EXPECT_LT(ent, 0.5);
  // Center bin carries the bulk of the mass (perfect predictions).
  EXPECT_GT(static_cast<double>(h[512]) / static_cast<double>(codes.size()),
            0.95);
}

TEST(NyxQuant, RequestedSizeExact) {
  EXPECT_EQ(data::generate_nyx_quant(12345, 1).size(), 12345u);
}

}  // namespace
}  // namespace parhuff
