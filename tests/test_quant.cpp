// Mini-SZ quantizer substrate: the error-bound guarantee, outlier handling,
// reconstruction round trip, and the Nyx-Quant statistical profile. The
// bound/round-trip coverage is property-based (proptest.hpp): seeded field
// families × bin counts, every case replayable from the printed seed.
#include <gtest/gtest.h>

#include <cmath>

#include "data/quant.hpp"
#include "core/entropy.hpp"
#include "proptest.hpp"

namespace parhuff {
namespace {

using data::Dims;
namespace pt = proptest;

// ---------------------------------------------------------------------------
// Property suites: quantize → reconstruct must land within eb elementwise
// for every finite field family, across both Huffman-alphabet bin counts
// and an in-between size — 72 seeded cases.

class QuantRoundTrip : public ::testing::TestWithParam<u32> {};

TEST_P(QuantRoundTrip, ErrorBoundHolds) {
  const u32 nbins = GetParam();
  for (const pt::FieldKind kind :
       {pt::FieldKind::kSmooth, pt::FieldKind::kTurbulent,
        pt::FieldKind::kConstant}) {
    const auto failure = pt::find_field_failure(
        kind, 8,
        [&](const std::vector<float>& field, Dims dims,
            const pt::CaseId& id) -> std::optional<std::string> {
          // Vary the bound per case, seeded: 1e-1 .. 1e-3.
          Xoshiro256 rng(id.seed ^ 0x5bd1e995);
          const double eb = std::pow(10.0, -1.0 - 2.0 * pt::uniform(rng, 0, 1));
          const auto q = data::lorenzo_quantize(field, dims, eb, nbins);
          for (const u16 c : q.codes) {
            if (c >= nbins) return "code out of range";
          }
          const auto recon = data::lorenzo_reconstruct(q);
          const double worst = pt::max_abs_error(field, recon);
          if (worst > eb * 1.0001) {
            return "worst error " + std::to_string(worst) + " > eb " +
                   std::to_string(eb);
          }
          return std::nullopt;
        });
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, QuantRoundTrip,
                         ::testing::Values(64u, 256u, 1024u),
                         [](const ::testing::TestParamInfo<u32>& pi) {
                           return "nbins" + std::to_string(pi.param);
                         });

TEST(QuantProp, OutliersReconstructExactly) {
  // Every (index, value) pair in the outlier table must come back
  // bit-identical — the error bound only covers quantized elements.
  const auto failure = pt::find_field_failure(
      pt::FieldKind::kTurbulent, 8,
      [&](const std::vector<float>& field, Dims dims,
          const pt::CaseId&) -> std::optional<std::string> {
        const auto q = data::lorenzo_quantize(field, dims, 1e-4, 64);
        const auto recon = data::lorenzo_reconstruct(q);
        for (const auto& [oi, value] : q.outliers) {
          if (recon[oi] != value) return "outlier not exact";
        }
        return std::nullopt;
      });
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(Quantizer, TighterBoundMoreOutliersOrCodes) {
  const Dims dims{24, 24, 24};
  const auto field = data::generate_cosmo_field(dims, 3);
  const auto loose = data::lorenzo_quantize(field, dims, 1e-1, 64);
  const auto tight = data::lorenzo_quantize(field, dims, 1e-4, 64);
  EXPECT_GE(tight.outliers.size(), loose.outliers.size());
}

TEST(Quantizer, RejectsBadParameters) {
  const Dims dims{4, 4, 4};
  const auto field = data::generate_cosmo_field(dims, 1);
  EXPECT_THROW((void)data::lorenzo_quantize(field, dims, 0.0, 256),
               std::invalid_argument);
  EXPECT_THROW((void)data::lorenzo_quantize(field, Dims{5, 4, 4}, 1e-2, 256),
               std::invalid_argument);
  EXPECT_THROW((void)data::lorenzo_quantize(field, dims, 1e-2, 2),
               std::invalid_argument);
}

TEST(Quantizer, DeterministicInSeed) {
  const Dims dims{16, 16, 16};
  const auto a = data::generate_cosmo_field(dims, 77);
  const auto b = data::generate_cosmo_field(dims, 77);
  const auto c = data::generate_cosmo_field(dims, 78);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Quantizer, TwoDimensionalFields) {
  // dims {nx, ny, 1}: the predictor degenerates to the 2-D Lorenzo
  // stencil (left + up - upleft). SZ treats 2-D slices exactly this way.
  const Dims dims{64, 64, 1};
  std::vector<float> field(dims.total());
  for (std::size_t y = 0; y < dims.ny; ++y) {
    for (std::size_t x = 0; x < dims.nx; ++x) {
      field[y * dims.nx + x] =
          static_cast<float>(std::sin(x * 0.1) * std::cos(y * 0.07));
    }
  }
  const double eb = 1e-2;
  const auto q = data::lorenzo_quantize(field, dims, eb, 256);
  const auto recon = data::lorenzo_reconstruct(q);
  EXPECT_LE(pt::max_abs_error(field, recon), eb * 1.0001);
  // Smooth 2-D data: the center bin dominates.
  std::size_t center = 0;
  for (u16 c : q.codes) center += c == 128 ? 1 : 0;
  EXPECT_GT(static_cast<double>(center) / q.codes.size(), 0.5);
}

TEST(Quantizer, OneDimensionalSeries) {
  // dims {n, 1, 1}: plain 1-D delta prediction — time-series mode.
  const Dims dims{4096, 1, 1};
  std::vector<float> series(dims.total());
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<float>(10.0 * std::sin(i * 0.01) + 0.5 * i * 0.001);
  }
  const double eb = 1e-2;
  const auto q = data::lorenzo_quantize(series, dims, eb, 512);
  const auto recon = data::lorenzo_reconstruct(q);
  ASSERT_LE(pt::max_abs_error(series, recon), eb * 1.0001);
}

TEST(NyxQuant, ProfileMatchesPaper) {
  // The paper's Nyx-Quant: 1024 bins, avg Huffman bits ≈ 1.03 — i.e. the
  // center bin dominates. Check entropy lands in the right band.
  const auto codes = data::generate_nyx_quant(1 << 20, 42);
  std::vector<u64> h(1024, 0);
  for (u16 c : codes) ++h[c];
  const double ent = shannon_entropy(h);
  EXPECT_GT(ent, 0.05);
  EXPECT_LT(ent, 0.5);
  // Center bin carries the bulk of the mass (perfect predictions).
  EXPECT_GT(static_cast<double>(h[512]) / static_cast<double>(codes.size()),
            0.95);
}

TEST(NyxQuant, RequestedSizeExact) {
  EXPECT_EQ(data::generate_nyx_quant(12345, 1).size(), 12345u);
}

}  // namespace
}  // namespace parhuff
