// GPU Merge Path: split-point invariants and full merges vs std::merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/executor.hpp"
#include "core/merge_path.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

std::vector<int> run_merge(const std::vector<int>& a, const std::vector<int>& b,
                           std::size_t parts) {
  std::vector<int> out(a.size() + b.size());
  SeqExec exec;
  merge_path(
      exec, a.size(), b.size(),
      [&](std::size_t i, std::size_t j) { return a[i] <= b[j]; },
      [&](std::size_t k, bool from_a, std::size_t src) {
        out[k] = from_a ? a[src] : b[src];
      },
      parts);
  return out;
}

TEST(MergePath, BothEmpty) {
  EXPECT_TRUE(run_merge({}, {}, 4).empty());
}

TEST(MergePath, OneSideEmpty) {
  EXPECT_EQ(run_merge({1, 2, 3}, {}, 4), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(run_merge({}, {4, 5}, 4), (std::vector<int>{4, 5}));
}

TEST(MergePath, Interleaved) {
  EXPECT_EQ(run_merge({1, 3, 5}, {2, 4, 6}, 2),
            (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(MergePath, StableTowardA) {
  // Equal keys must come from A first.
  std::vector<int> a = {1, 2, 2, 3};
  std::vector<int> b = {2, 2, 3};
  SeqExec exec;
  std::vector<int> out(a.size() + b.size());
  std::vector<char> from(a.size() + b.size());
  merge_path(
      exec, a.size(), b.size(),
      [&](std::size_t i, std::size_t j) { return a[i] <= b[j]; },
      [&](std::size_t k, bool from_a, std::size_t src) {
        out[k] = from_a ? a[src] : b[src];
        from[k] = from_a ? 'a' : 'b';
      },
      3);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 2, 2, 3, 3}));
  EXPECT_EQ(std::string(from.begin(), from.end()), "aaabbab");
}

class MergePathRandom
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MergePathRandom, MatchesStdMerge) {
  const auto [na, nb, parts] = GetParam();
  Xoshiro256 rng(static_cast<u64>(na * 7919 + nb * 131 + parts));
  std::vector<int> a(na), b(nb);
  for (auto& x : a) x = static_cast<int>(rng.below(500));
  for (auto& x : b) x = static_cast<int>(rng.below(500));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> expect;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expect));
  EXPECT_EQ(run_merge(a, b, static_cast<std::size_t>(parts)), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MergePathRandom,
    ::testing::Values(std::tuple{10, 10, 1}, std::tuple{10, 10, 4},
                      std::tuple{1000, 7, 16}, std::tuple{7, 1000, 16},
                      std::tuple{513, 511, 8}, std::tuple{1, 1, 2},
                      std::tuple{5000, 5000, 64},
                      std::tuple{100, 100, 200}));

TEST(MergePathSplit, DiagonalInvariant) {
  // For every diagonal d, the split (i, d-i) must satisfy the merge-path
  // conditions: A[i-1] <= B[d-i] and B[d-i-1] < A[i].
  Xoshiro256 rng(99);
  std::vector<int> a(257), b(123);
  for (auto& x : a) x = static_cast<int>(rng.below(64));
  for (auto& x : b) x = static_cast<int>(rng.below(64));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  auto le = [&](std::size_t i, std::size_t j) { return a[i] <= b[j]; };
  for (std::size_t d = 0; d <= a.size() + b.size(); ++d) {
    const std::size_t i = merge_path_split(d, a.size(), b.size(), le);
    const std::size_t j = d - i;
    ASSERT_LE(i, a.size());
    ASSERT_LE(j, b.size());
    if (i > 0 && j < b.size()) {
      EXPECT_LE(a[i - 1], b[j]) << "d=" << d;
    }
    if (j > 0 && i < a.size()) {
      EXPECT_LT(b[j - 1], a[i]) << "d=" << d;
    }
  }
}

TEST(MergePath, WorksUnderOmpExecutor) {
  Xoshiro256 rng(5);
  std::vector<int> a(4096), b(4096);
  for (auto& x : a) x = static_cast<int>(rng.below(10000));
  for (auto& x : b) x = static_cast<int>(rng.below(10000));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> expect;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expect));
  std::vector<int> out(a.size() + b.size());
  OmpExec exec(0);
  merge_path(
      exec, a.size(), b.size(),
      [&](std::size_t i, std::size_t j) { return a[i] <= b[j]; },
      [&](std::size_t k, bool from_a, std::size_t src) {
        out[k] = from_a ? a[src] : b[src];
      },
      32);
  EXPECT_EQ(out, expect);
}

}  // namespace
}  // namespace parhuff
