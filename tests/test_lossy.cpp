// The cuSZ-style lossy compressor: error-bound guarantee through the full
// stack (predict → quantize → Huffman → container → decode →
// reconstruct), ratio behaviour, container robustness — for both the
// glued PHL1 path (lossy.hpp) and the fused PHL2 path (fused.hpp).
//
// The round-trip coverage is property-based (proptest.hpp): seeded field
// families × error-bound modes × both Huffman alphabets, asserting
// |x - x'| <= eb elementwise on every case. The named tests below the
// property suites pin specific behaviors (ratio floors, outlier
// exactness, container rejection) the properties don't express.
#include <gtest/gtest.h>

#include <cmath>

#include "core/format.hpp"
#include "data/quant.hpp"
#include "lossy/fused.hpp"
#include "lossy/lossy.hpp"
#include "proptest.hpp"

namespace parhuff {
namespace {

using data::Dims;
namespace pt = proptest;

double max_error(std::span<const float> a, std::span<const float> b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Property suites. FusedRoundTrip covers {relative, absolute} bound modes
// × {256, 1024} bins (the u8 and u16 Huffman alphabets) × every field
// family — 120 seeded cases. GluedRoundTrip covers the PHL1 path on the
// finite families. Every case replays from the family/index/seed printed
// on failure.

struct BoundMode {
  const char* name;
  double rel = 0;
  double abs = 0;
  u32 nbins = 0;
};

class FusedRoundTrip : public ::testing::TestWithParam<BoundMode> {};

TEST_P(FusedRoundTrip, ErrorBoundHoldsEndToEnd) {
  const BoundMode mode = GetParam();
  for (const pt::FieldKind kind :
       {pt::FieldKind::kSmooth, pt::FieldKind::kTurbulent,
        pt::FieldKind::kConstant, pt::FieldKind::kDenormal,
        pt::FieldKind::kSpiky}) {
    const auto failure = pt::find_field_failure(
        kind, 6,
        [&](const std::vector<float>& field, Dims dims,
            const pt::CaseId&) -> std::optional<std::string> {
          lossy::FusedConfig cfg;
          cfg.rel_error_bound = mode.rel;
          cfg.abs_error_bound = mode.abs;
          cfg.nbins = mode.nbins;
          cfg.rle_min_run = 64;  // small shapes: let RLE engage
          lossy::FusedReport rep;
          const auto bytes =
              lossy::compress_field_fused(field, dims, cfg, &rep);
          const lossy::Field back = lossy::decompress_field(bytes);
          if (back.values.size() != field.size()) return "size mismatch";
          const double worst = pt::max_abs_error(field, back.values);
          if (worst > rep.error_bound * 1.0001) {
            return "worst error " + std::to_string(worst) + " > bound " +
                   std::to_string(rep.error_bound);
          }
          if (rep.rle_run_symbols + rep.residual_symbols != dims.total()) {
            return "RLE accounting does not cover the field";
          }
          return std::nullopt;
        });
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FusedRoundTrip,
    ::testing::Values(BoundMode{"rel_u8", 1e-2, 0, 256},
                      BoundMode{"rel_u16", 1e-3, 0, 1024},
                      BoundMode{"abs_u8", 0, 0.05, 256},
                      BoundMode{"abs_u16", 0, 0.01, 1024}),
    [](const ::testing::TestParamInfo<BoundMode>& pi) {
      return pi.param.name;
    });

class GluedRoundTrip : public ::testing::TestWithParam<BoundMode> {};

TEST_P(GluedRoundTrip, ErrorBoundHoldsEndToEnd) {
  const BoundMode mode = GetParam();
  for (const pt::FieldKind kind :
       {pt::FieldKind::kSmooth, pt::FieldKind::kTurbulent,
        pt::FieldKind::kConstant}) {
    const auto failure = pt::find_field_failure(
        kind, 4,
        [&](const std::vector<float>& field, Dims dims,
            const pt::CaseId&) -> std::optional<std::string> {
          lossy::Config cfg;
          cfg.rel_error_bound = mode.rel;
          cfg.abs_error_bound = mode.abs;
          cfg.nbins = mode.nbins;
          lossy::Report rep;
          const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
          const lossy::Field back = lossy::decompress_field(bytes);
          const double worst = pt::max_abs_error(field, back.values);
          if (worst > rep.error_bound * 1.0001) {
            return "worst error " + std::to_string(worst) + " > bound " +
                   std::to_string(rep.error_bound);
          }
          return std::nullopt;
        });
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, GluedRoundTrip,
    ::testing::Values(BoundMode{"rel_u8", 1e-2, 0, 256},
                      BoundMode{"rel_u16", 1e-3, 0, 1024},
                      BoundMode{"abs_u8", 0, 0.05, 256},
                      BoundMode{"abs_u16", 0, 0.01, 1024}),
    [](const ::testing::TestParamInfo<BoundMode>& pi) {
      return pi.param.name;
    });

TEST(LossyProp, HarnessCatchesABrokenBound) {
  // Sanity-check the harness itself: a deliberately broken property (the
  // claimed bound is 1/100th of the real one) must produce a failure with
  // a shrunk, replayable case — otherwise the 100+ green cases above
  // prove nothing.
  const auto failure = pt::find_field_failure(
      pt::FieldKind::kTurbulent, 6,
      [&](const std::vector<float>& field, Dims dims,
          const pt::CaseId&) -> std::optional<std::string> {
        lossy::FusedConfig cfg;
        cfg.rel_error_bound = 1e-2;
        lossy::FusedReport rep;
        const auto bytes = lossy::compress_field_fused(field, dims, cfg, &rep);
        const lossy::Field back = lossy::decompress_field(bytes);
        const double worst = pt::max_abs_error(field, back.values);
        if (worst > rep.error_bound * 0.01) {  // deliberately too strict
          return "broken bound trips";
        }
        return std::nullopt;
      });
  ASSERT_TRUE(failure.has_value());
  // The report names the family, the seed, and the shrunk dims.
  EXPECT_NE(failure->find("family=turbulent"), std::string::npos) << *failure;
  EXPECT_NE(failure->find("seed=0x"), std::string::npos) << *failure;
}

TEST(LossyProp, FusedAndGluedReconstructionsAgree) {
  // Same field, same absolute bound: both paths must satisfy the bound
  // independently (they need not produce identical floats — the fused
  // path's RLE/outlier handling differs — but each must be within eb).
  const auto failure = pt::find_field_failure(
      pt::FieldKind::kSmooth, 8,
      [&](const std::vector<float>& field, Dims dims,
          const pt::CaseId&) -> std::optional<std::string> {
        lossy::Config gc;
        gc.abs_error_bound = 0.02;
        lossy::FusedConfig fc;
        fc.abs_error_bound = 0.02;
        const auto glued = lossy::decompress_field(
            lossy::compress_field(field, dims, gc));
        const auto fused = lossy::decompress_field(
            lossy::compress_field_fused(field, dims, fc));
        if (pt::max_abs_error(field, glued.values) > 0.02 * 1.0001) {
          return "glued path out of bound";
        }
        if (pt::max_abs_error(field, fused.values) > 0.02 * 1.0001) {
          return "fused path out of bound";
        }
        return std::nullopt;
      });
  EXPECT_FALSE(failure.has_value()) << *failure;
}

// ---------------------------------------------------------------------------
// Named glued-path (PHL1) tests: ratio behaviour and container rules the
// properties don't pin.

TEST(Lossy, LooserBoundCompressesBetter) {
  const Dims dims{40, 40, 40};
  const auto field = data::generate_cosmo_field(dims, 9);
  lossy::Report loose, tight;
  lossy::Config cl, ct;
  cl.rel_error_bound = 1e-1;
  ct.rel_error_bound = 1e-4;
  (void)lossy::compress_field(field, dims, cl, &loose);
  (void)lossy::compress_field(field, dims, ct, &tight);
  EXPECT_GT(loose.ratio(), tight.ratio());
  EXPECT_GT(loose.ratio(), 4.0);  // smooth field at 10% relative: easy
}

TEST(Lossy, ConstantFieldHitsTheOneBitFloor) {
  // Huffman cannot spend less than one bit per symbol, so a perfectly
  // predictable f32 field tops out near 32x (minus container overhead) on
  // the glued path — the reason the fused path stacks the RLE stage.
  const Dims dims{32, 32, 32};
  std::vector<float> field(dims.total(), 3.25f);
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, {}, &rep);
  EXPECT_GT(rep.ratio(), 20.0);
  EXPECT_LT(rep.ratio(), 33.0);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_LE(max_error(field, back.values), rep.error_bound * 1.0001);
}

TEST(Lossy, OutliersSurviveRoundTrip) {
  const Dims dims{24, 24, 24};
  auto field = data::generate_cosmo_field(dims, 7);
  // Plant extreme spikes the quantizer must store verbatim.
  field[100] = 1e9f;
  field[5000] = -1e9f;
  lossy::Config cfg;
  cfg.abs_error_bound = 0.01;
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
  EXPECT_GE(rep.outliers, 2u);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_EQ(back.values[100], 1e9f);  // outliers are exact
  EXPECT_EQ(back.values[5000], -1e9f);
  EXPECT_LE(max_error(field, back.values), 0.01 * 1.0001);
}

TEST(Lossy, RejectsBadParameters) {
  const Dims dims{8, 8, 8};
  const auto field = data::generate_cosmo_field(dims, 1);
  EXPECT_THROW((void)lossy::compress_field(field, Dims{9, 8, 8}, {}),
               std::invalid_argument);
  lossy::Config bad;
  bad.rel_error_bound = 0;
  EXPECT_THROW((void)lossy::compress_field(field, dims, bad),
               std::invalid_argument);
  bad = {};
  bad.nbins = 2;
  EXPECT_THROW((void)lossy::compress_field(field, dims, bad),
               std::invalid_argument);
}

TEST(Lossy, RejectsCorruptContainer) {
  const Dims dims{16, 16, 16};
  const auto field = data::generate_cosmo_field(dims, 3);
  auto bytes = lossy::compress_field(field, dims, {});
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW((void)lossy::decompress_field(bad), std::runtime_error);
  }
  {
    auto bad = bytes;
    bad.resize(bad.size() / 3);
    EXPECT_THROW((void)lossy::decompress_field(bad), std::runtime_error);
  }
  {
    auto bad = bytes;
    bad.push_back(0);
    EXPECT_THROW((void)lossy::decompress_field(bad), std::runtime_error);
  }
}

TEST(Lossy, FileRoundTrip) {
  const Dims dims{32, 32, 16};
  const auto field = data::generate_cosmo_field(dims, 4);
  const auto bytes = lossy::compress_field(field, dims, {});
  const std::string path = "/tmp/parhuff_lossy_test.phl";
  write_file(path, bytes);
  const auto back = lossy::decompress_field(read_file(path));
  EXPECT_EQ(back.values.size(), field.size());
}

TEST(Lossy, ReportSectionsAddUp) {
  const Dims dims{32, 32, 32};
  const auto field = data::generate_cosmo_field(dims, 6);
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, {}, &rep);
  EXPECT_EQ(rep.compressed_bytes, bytes.size());
  EXPECT_GT(rep.huffman.compression_ratio(), 1.0);
  EXPECT_LE(rep.outlier_bytes, rep.compressed_bytes);
}

// ---------------------------------------------------------------------------
// Named fused-path (PHL2) tests.

TEST(Fused, ConstantFieldBreaksTheOneBitFloor) {
  // The same field that tops out near 32x on the glued path: with every
  // perfect-prediction run extracted into RLE1, the fused container holds
  // a handful of runs instead of 32768 one-bit symbols.
  const Dims dims{32, 32, 32};
  std::vector<float> field(dims.total(), 3.25f);
  lossy::FusedReport rep;
  const auto bytes = lossy::compress_field_fused(field, dims, {}, &rep);
  EXPECT_GT(rep.ratio(), 100.0);
  EXPECT_GE(rep.rle_runs, 1u);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_LE(max_error(field, back.values), rep.error_bound * 1.0001);
}

TEST(Fused, NonFinitesRoundTripExactly) {
  const Dims dims{16, 16, 16};
  auto field = data::generate_cosmo_field(dims, 8);
  field[0] = std::numeric_limits<float>::quiet_NaN();
  field[17] = std::numeric_limits<float>::infinity();
  field[300] = -std::numeric_limits<float>::infinity();
  field[4095] = std::numeric_limits<float>::quiet_NaN();
  lossy::FusedConfig cfg;
  cfg.rel_error_bound = 1e-3;
  lossy::FusedReport rep;
  const auto bytes = lossy::compress_field_fused(field, dims, cfg, &rep);
  EXPECT_GE(rep.outliers, 4u);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_TRUE(std::isnan(back.values[0]));
  EXPECT_EQ(back.values[17], std::numeric_limits<float>::infinity());
  EXPECT_EQ(back.values[300], -std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isnan(back.values[4095]));
  // Finite neighbours stay in bound: the NaNs predicted as 0.0f on both
  // sides, so the reconstructions never diverged.
  EXPECT_LE(pt::max_abs_error(field, back.values), rep.error_bound * 1.0001);
}

TEST(Fused, RleDisabledProducesPlainContainer) {
  const Dims dims{24, 24, 24};
  std::vector<float> field(dims.total(), 1.0f);
  lossy::FusedConfig on, off;
  off.rle_min_run = 0;
  lossy::FusedReport ron, roff;
  const auto bon = lossy::compress_field_fused(field, dims, on, &ron);
  const auto boff = lossy::compress_field_fused(field, dims, off, &roff);
  EXPECT_GE(ron.rle_runs, 1u);
  EXPECT_EQ(roff.rle_runs, 0u);
  EXPECT_EQ(roff.residual_symbols, dims.total());
  EXPECT_LT(bon.size(), boff.size());
  // Both decompress through the shared entry point.
  EXPECT_EQ(lossy::decompress_field(bon).values,
            lossy::decompress_field(boff).values);
}

TEST(Fused, ReportAccountsForEverySymbol) {
  const Dims dims{32, 32, 32};
  const auto field = data::generate_cosmo_field(dims, 6);
  lossy::FusedConfig cfg;
  cfg.rel_error_bound = 1e-2;
  cfg.rle_min_run = 64;
  lossy::FusedReport rep;
  const auto bytes = lossy::compress_field_fused(field, dims, cfg, &rep);
  EXPECT_EQ(rep.compressed_bytes, bytes.size());
  EXPECT_EQ(rep.rle_run_symbols + rep.residual_symbols, dims.total());
  EXPECT_LE(rep.outlier_bytes, rep.compressed_bytes);
  EXPECT_DOUBLE_EQ(
      lossy::decompress_field(bytes).error_bound, rep.error_bound);
}

TEST(Fused, RejectsBadParameters) {
  const Dims dims{8, 8, 8};
  const auto field = data::generate_cosmo_field(dims, 1);
  EXPECT_THROW((void)lossy::compress_field_fused(field, Dims{9, 8, 8}, {}),
               std::invalid_argument);
  lossy::FusedConfig bad;
  bad.rel_error_bound = 0;
  EXPECT_THROW((void)lossy::compress_field_fused(field, dims, bad),
               std::invalid_argument);
  bad = {};
  bad.nbins = 2;
  EXPECT_THROW((void)lossy::compress_field_fused(field, dims, bad),
               std::invalid_argument);
  bad = {};
  bad.nbins = 1 << 17;
  EXPECT_THROW((void)lossy::compress_field_fused(field, dims, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lossless byte-stream round trips on the same harness: the Huffman core
// under the quantizer must be exact on arbitrary run-heavy byte soup.

TEST(LossyProp, ByteStreamsRoundTripLosslessly) {
  for (std::uint64_t idx = 0; idx < 16; ++idx) {
    const std::uint64_t seed = pt::case_seed(/*family_tag=*/100, idx);
    Xoshiro256 rng(seed);
    std::vector<u8> bytes = pt::make_bytes(rng, 8192);
    if (bytes.empty()) bytes.push_back(static_cast<u8>(rng.below(256)));
    const Compressed<u8> blob = compress<u8>(bytes, PipelineConfig{});
    EXPECT_EQ(decompress(blob), bytes) << "seed=0x" << std::hex << seed;
  }
}

}  // namespace
}  // namespace parhuff
