// The cuSZ-style lossy compressor: error-bound guarantee through the full
// stack (predict → quantize → Huffman → container → decode →
// reconstruct), ratio behaviour, container robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/format.hpp"
#include "data/quant.hpp"
#include "lossy/lossy.hpp"

namespace parhuff {
namespace {

using data::Dims;

double max_error(std::span<const float> a, std::span<const float> b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

class LossyBound : public ::testing::TestWithParam<double> {};

TEST_P(LossyBound, ErrorBoundHoldsEndToEnd) {
  const double rel = GetParam();
  const Dims dims{48, 48, 32};
  const auto field = data::generate_cosmo_field(dims, 5);
  lossy::Config cfg;
  cfg.rel_error_bound = rel;
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
  const auto back = lossy::decompress_field(bytes);
  ASSERT_EQ(back.values.size(), field.size());
  EXPECT_LE(max_error(field, back.values), rep.error_bound * 1.0001);
  EXPECT_EQ(back.dims.nx, dims.nx);
  EXPECT_DOUBLE_EQ(back.error_bound, rep.error_bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, LossyBound,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

TEST(Lossy, LooserBoundCompressesBetter) {
  const Dims dims{40, 40, 40};
  const auto field = data::generate_cosmo_field(dims, 9);
  lossy::Report loose, tight;
  lossy::Config cl, ct;
  cl.rel_error_bound = 1e-1;
  ct.rel_error_bound = 1e-4;
  (void)lossy::compress_field(field, dims, cl, &loose);
  (void)lossy::compress_field(field, dims, ct, &tight);
  EXPECT_GT(loose.ratio(), tight.ratio());
  EXPECT_GT(loose.ratio(), 4.0);  // smooth field at 10% relative: easy
}

TEST(Lossy, AbsoluteBoundMode) {
  const Dims dims{16, 16, 16};
  const auto field = data::generate_cosmo_field(dims, 2);
  lossy::Config cfg;
  cfg.abs_error_bound = 0.05;
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
  EXPECT_DOUBLE_EQ(rep.error_bound, 0.05);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_LE(max_error(field, back.values), 0.05 * 1.0001);
}

TEST(Lossy, ConstantFieldHitsTheOneBitFloor) {
  // Huffman cannot spend less than one bit per symbol, so a perfectly
  // predictable f32 field tops out near 32x (minus container overhead) —
  // the reason SZ stacks run-length/dictionary stages for such data.
  const Dims dims{32, 32, 32};
  std::vector<float> field(dims.total(), 3.25f);
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, {}, &rep);
  EXPECT_GT(rep.ratio(), 20.0);
  EXPECT_LT(rep.ratio(), 33.0);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_LE(max_error(field, back.values), rep.error_bound * 1.0001);
}

TEST(Lossy, OutliersSurviveRoundTrip) {
  const Dims dims{24, 24, 24};
  auto field = data::generate_cosmo_field(dims, 7);
  // Plant extreme spikes the quantizer must store verbatim.
  field[100] = 1e9f;
  field[5000] = -1e9f;
  lossy::Config cfg;
  cfg.abs_error_bound = 0.01;
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
  EXPECT_GE(rep.outliers, 2u);
  const auto back = lossy::decompress_field(bytes);
  EXPECT_EQ(back.values[100], 1e9f);  // outliers are exact
  EXPECT_EQ(back.values[5000], -1e9f);
  EXPECT_LE(max_error(field, back.values), 0.01 * 1.0001);
}

TEST(Lossy, RejectsBadParameters) {
  const Dims dims{8, 8, 8};
  const auto field = data::generate_cosmo_field(dims, 1);
  EXPECT_THROW((void)lossy::compress_field(field, Dims{9, 8, 8}, {}),
               std::invalid_argument);
  lossy::Config bad;
  bad.rel_error_bound = 0;
  EXPECT_THROW((void)lossy::compress_field(field, dims, bad),
               std::invalid_argument);
  bad = {};
  bad.nbins = 2;
  EXPECT_THROW((void)lossy::compress_field(field, dims, bad),
               std::invalid_argument);
}

TEST(Lossy, RejectsCorruptContainer) {
  const Dims dims{16, 16, 16};
  const auto field = data::generate_cosmo_field(dims, 3);
  auto bytes = lossy::compress_field(field, dims, {});
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW((void)lossy::decompress_field(bad), std::runtime_error);
  }
  {
    auto bad = bytes;
    bad.resize(bad.size() / 3);
    EXPECT_THROW((void)lossy::decompress_field(bad), std::runtime_error);
  }
  {
    auto bad = bytes;
    bad.push_back(0);
    EXPECT_THROW((void)lossy::decompress_field(bad), std::runtime_error);
  }
}

TEST(Lossy, FileRoundTrip) {
  const Dims dims{32, 32, 16};
  const auto field = data::generate_cosmo_field(dims, 4);
  const auto bytes = lossy::compress_field(field, dims, {});
  const std::string path = "/tmp/parhuff_lossy_test.phl";
  write_file(path, bytes);
  const auto back = lossy::decompress_field(read_file(path));
  EXPECT_EQ(back.values.size(), field.size());
}

TEST(Lossy, ReportSectionsAddUp) {
  const Dims dims{32, 32, 32};
  const auto field = data::generate_cosmo_field(dims, 6);
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, {}, &rep);
  EXPECT_EQ(rep.compressed_bytes, bytes.size());
  EXPECT_GT(rep.huffman.compression_ratio(), 1.0);
  EXPECT_LE(rep.outlier_bytes, rep.compressed_bytes);
}

}  // namespace
}  // namespace parhuff
