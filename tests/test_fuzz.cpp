// Randomized integration sweeps: every encoder against randomized
// alphabets, distributions, sizes and chunkings must round-trip; corrupted
// containers must be rejected or decoded defensively (throw, never crash);
// cross-encoder decoded-output equality holds for every draw.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "core/decode.hpp"
#include "core/decode_simt.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/encode_simt.hpp"
#include "core/executor.hpp"
#include "core/format.hpp"
#include "core/par_codebook.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "core/tree.hpp"
#include "data/synth_hist.hpp"
#include "lossy/fused.hpp"
#include "lossy/lossy.hpp"
#include "proptest.hpp"
#include "svc/service.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/work_steal.hpp"

namespace parhuff {
namespace {

/// Random symbol stream: alphabet size, skew and run structure all drawn
/// from the seed.
std::vector<u16> random_stream(Xoshiro256& rng, std::size_t max_n,
                               std::size_t& nbins_out) {
  const std::size_t nbins = 2 + rng.below(2000);
  nbins_out = nbins;
  const std::size_t n = 1 + rng.below(max_n);
  // Distribution shape: uniform, zipf-ish, or runs-of-one-symbol.
  const u64 shape = rng.below(3);
  std::vector<u16> v(n);
  if (shape == 0) {
    for (auto& s : v) s = static_cast<u16>(rng.below(nbins));
  } else if (shape == 1) {
    for (auto& s : v) {
      // Squared draw skews toward small symbols.
      const u64 a = rng.below(nbins);
      const u64 b = rng.below(nbins);
      s = static_cast<u16>(a * b / (nbins ? nbins : 1));
    }
  } else {
    std::size_t i = 0;
    while (i < n) {
      const u16 sym = static_cast<u16>(rng.below(nbins));
      const std::size_t run = 1 + rng.geometric(0.02);
      for (std::size_t k = 0; k < run && i < n; ++k) v[i++] = sym;
    }
  }
  return v;
}

class FuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FuzzRoundTrip, EveryEncoderEveryDraw) {
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 7919 + 3);
  for (int draw = 0; draw < 6; ++draw) {
    std::size_t nbins = 0;
    const auto input = random_stream(rng, 60000, nbins);
    const auto freq = histogram_serial<u16>(input, nbins);
    const Codebook cb = build_codebook_serial(freq);
    ASSERT_EQ(cb.validate(), "");

    const u32 chunk = static_cast<u32>(64 << rng.below(6));
    const auto ref = encode_serial<u16>(input, cb, chunk);
    ASSERT_EQ(decode_stream<u16>(ref, cb, 1), input);

    const auto omp = encode_openmp<u16>(input, cb, chunk, 2);
    ASSERT_EQ(omp.payload, ref.payload);
    const auto coarse = encode_coarse_simt<u16>(input, cb, chunk);
    ASSERT_EQ(coarse.payload, ref.payload);
    if (chunk <= 4096) {
      const auto ps = encode_prefixsum_simt<u16>(input, cb, chunk);
      ASSERT_EQ(ps.payload, ref.payload);
    }

    const u32 M = 6 + static_cast<u32>(rng.below(7));   // 6..12
    const u32 r = 1 + static_cast<u32>(rng.below(std::min(M - 1, 6u)));
    const auto rs = encode_reduceshuffle_simt<u16>(
        input, cb, ReduceShuffleConfig{M, r}, nullptr, nullptr);
    ASSERT_EQ(decode_stream<u16>(rs, cb, 1), input)
        << "M=" << M << " r=" << r << " n=" << input.size();
    ASSERT_EQ(decode_simt<u16>(rs, cb, nullptr), input);

    AdaptiveConfig ac;
    ac.magnitude = std::max(M, 3u);
    ac.max_reduce = std::min(6u, ac.magnitude - 1);
    const auto ad = encode_adaptive_simt<u16, 32>(input, cb, ac);
    ASSERT_EQ(decode_stream<u16>(ad, cb, 1), input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip, ::testing::Range(0, 10));

class FuzzContainer : public ::testing::TestWithParam<int> {};

TEST_P(FuzzContainer, MutatedBytesNeverCrash) {
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 131 + 17);
  std::size_t nbins = 0;
  const auto input = random_stream(rng, 20000, nbins);
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.encoder = rng.below(2) ? EncoderKind::kReduceShuffleSimt
                             : EncoderKind::kAdaptiveSimt;
  const auto blob = compress<u16>(input, cfg);
  const auto bytes = serialize(blob);

  for (int trial = 0; trial < 40; ++trial) {
    auto mutated = bytes;
    const u64 kind = rng.below(4);
    if (kind == 0) {
      mutated[rng.below(mutated.size())] ^= static_cast<u8>(1 + rng.below(255));
    } else if (kind == 1) {
      mutated.resize(rng.below(mutated.size()));
    } else if (kind == 2) {
      for (int k = 0; k < 16; ++k) {
        mutated[rng.below(mutated.size())] =
            static_cast<u8>(rng.below(256));
      }
    } else {
      mutated.insert(mutated.end(), rng.below(64), static_cast<u8>(0xAA));
    }
    // Every outcome is acceptable except a crash/UB: reject at parse, throw
    // at decode, or decode to (possibly wrong) symbols.
    try {
      const auto blob2 = deserialize<u16>(mutated);
      (void)decode_stream<u16>(blob2.stream, blob2.codebook, 1);
    } catch (const std::exception&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzContainer, ::testing::Range(0, 8));

TEST_P(FuzzContainer, ForgedHeaderFieldsWithValidChecksumNeverCrash) {
  // Random byte flips are almost always rejected by the stream section's
  // trailing fnv1a digest before any decode logic runs, so they never
  // exercise the layout-arithmetic checks. These mutations target the
  // stream header fields specifically and then RECOMPUTE the digest, so
  // the forged values reach deserialize_stream's validation and, when they
  // pass it, the decoders — which must throw or decode, never read OOB.
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 977 + 5);
  std::size_t nbins = 0;
  const auto input = random_stream(rng, 20000, nbins);
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.encoder = rng.below(2) ? EncoderKind::kReduceShuffleSimt
                             : EncoderKind::kAdaptiveSimt;
  const auto blob = compress<u16>(input, cfg);
  const auto bytes = serialize(blob);

  // Stream section offset: magic (4) + symbol width (1) + codebook.
  const std::size_t stream_at =
      5 + serialize_codebook(blob.codebook).size();
  ASSERT_LT(stream_at + 8, bytes.size());

  const auto patch_u64 = [](std::vector<u8>& buf, std::size_t at, u64 v) {
    std::memcpy(buf.data() + at, &v, sizeof(v));
  };
  const auto patch_u32 = [](std::vector<u8>& buf, std::size_t at, u32 v) {
    std::memcpy(buf.data() + at, &v, sizeof(v));
  };
  const auto fix_digest = [&](std::vector<u8>& buf) {
    const u64 d = fnv1a(std::span<const u8>(buf.data() + stream_at,
                                            buf.size() - stream_at - 8));
    std::memcpy(buf.data() + buf.size() - 8, &d, sizeof(d));
  };

  // Interesting forgeries per field, including the wrap-provoking extremes.
  const u64 u64_forgeries[] = {0,       1,          u64{1} << 32,
                               ~u64{0}, ~u64{0} - 30, ~u64{0} / 2};
  const u32 u32_forgeries[] = {0, 1, 0x7FFFFFFFu, 0xFFFFFFFFu};

  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = bytes;
    const u64 field = rng.below(6);
    if (field == 0) {  // n_symbols
      patch_u64(mutated, stream_at, u64_forgeries[rng.below(6)]);
    } else if (field == 1) {  // chunk_symbols
      patch_u32(mutated, stream_at + 8, u32_forgeries[rng.below(4)]);
    } else if (field == 2) {  // reduce_factor
      patch_u32(mutated, stream_at + 12, u32_forgeries[rng.below(4)]);
    } else if (field == 3) {  // per-chunk-reduce flag
      mutated[stream_at + 16] ^= static_cast<u8>(1 + rng.below(255));
    } else if (field == 4) {  // n_chunks
      patch_u32(mutated, stream_at + 17, u32_forgeries[rng.below(4)]);
    } else {  // chunk_bits[0] — the release-mode OOB route
      patch_u64(mutated, stream_at + 21, u64_forgeries[rng.below(6)]);
    }
    fix_digest(mutated);
    try {
      const auto blob2 = deserialize<u16>(mutated);
      (void)decode_stream<u16>(blob2.stream, blob2.codebook, 1);
    } catch (const std::exception&) {
      // expected for most forgeries
    }
  }

  // The concrete exploit this PR closes: chunk_bits[0] near 2^64 wraps
  // words_for_bits() to 0 cells, so the forged chunk passes the payload
  // size comparison while claiming billions of bits over no storage. It
  // must be rejected at parse, not handed to a decoder.
  auto forged = bytes;
  patch_u64(forged, stream_at + 21, ~u64{0} - 30);
  fix_digest(forged);
  EXPECT_THROW((void)deserialize<u16>(forged), std::exception);
}

TEST_P(FuzzContainer, GapAnnotatedContainersMutatedBytesNeverCrash) {
  // Same contract as MutatedBytesNeverCrash, but over "PHF3" containers
  // carrying the GAP1 optional field — random damage to the field region
  // (tag, length, payload, per-field checksum) must be rejected at parse,
  // thrown at decode, or decoded defensively; never UB.
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 389 + 29);
  std::size_t nbins = 0;
  const auto input = random_stream(rng, 20000, nbins);
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.gap_subseq_bits = static_cast<u32>(128 << rng.below(6));
  cfg.encoder = rng.below(2) ? EncoderKind::kReduceShuffleSimt
                             : EncoderKind::kAdaptiveSimt;
  const auto blob = compress<u16>(input, cfg);
  const auto bytes = serialize(blob);
  ASSERT_EQ(std::memcmp(bytes.data(), "PHF3", 4), 0);
  // Bias damage toward the optional-field region at the container's tail.
  const std::size_t field_region =
      5 + serialize_codebook(blob.codebook).size() +
      serialize_stream(blob.stream).size();

  for (int trial = 0; trial < 40; ++trial) {
    auto mutated = bytes;
    const u64 kind = rng.below(4);
    if (kind == 0) {
      const std::size_t at =
          field_region + rng.below(mutated.size() - field_region);
      mutated[at] ^= static_cast<u8>(1 + rng.below(255));
    } else if (kind == 1) {
      mutated.resize(field_region + rng.below(mutated.size() - field_region));
    } else if (kind == 2) {
      for (int k = 0; k < 8; ++k) {
        mutated[field_region + rng.below(mutated.size() - field_region)] =
            static_cast<u8>(rng.below(256));
      }
    } else {
      mutated[rng.below(mutated.size())] ^= static_cast<u8>(1 + rng.below(255));
    }
    try {
      const auto blob2 = deserialize<u16>(mutated);
      (void)decompress(blob2);  // gap-array tier when metadata survived
    } catch (const std::exception&) {
      // expected for most mutations
    }
  }
}

TEST_P(FuzzContainer, ForgedGapFieldWithValidChecksumNeverCrashes) {
  // Checksum-fixing forgeries aimed at the GAP1 payload header: subseq
  // size and entry count reach parse_gap_field's validation with a valid
  // per-field digest; whatever passes must then survive the kernel's
  // count/chain checks without OOB.
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 523 + 41);
  std::size_t nbins = 0;
  const auto input = random_stream(rng, 20000, nbins);
  PipelineConfig cfg;
  cfg.nbins = nbins;
  cfg.gap_subseq_bits = 1024;
  const auto blob = compress<u16>(input, cfg);
  auto bytes = serialize(blob);
  const std::size_t field_region =
      5 + serialize_codebook(blob.codebook).size() +
      serialize_stream(blob.stream).size();
  // n_fields(4) | tag(4) | len(8) | payload | digest(8)
  const std::size_t payload_at = field_region + 16;
  const std::size_t payload_len =
      12 + blob.stream.gaps.size() + 2 * blob.stream.gap_counts.size();
  const auto fix_field = [&](std::vector<u8>& buf) {
    const u64 d =
        fnv1a(std::span<const u8>(buf.data() + payload_at, payload_len));
    std::memcpy(buf.data() + payload_at + payload_len, &d, sizeof(d));
  };

  const u64 u64_forgeries[] = {0,       1,            u64{1} << 32,
                               ~u64{0}, ~u64{0} - 30, ~u64{0} / 2};
  const u32 u32_forgeries[] = {0,    1,     63,         1024,
                               4096, 32768, 0x7FFFFFFFu, 0xFFFFFFFFu};
  for (int trial = 0; trial < 40; ++trial) {
    auto mutated = bytes;
    if (rng.below(2)) {  // subseq_bits
      std::memcpy(mutated.data() + payload_at, &u32_forgeries[rng.below(8)],
                  4);
    } else {  // n entries
      std::memcpy(mutated.data() + payload_at + 4,
                  &u64_forgeries[rng.below(6)], 8);
    }
    fix_field(mutated);
    try {
      const auto blob2 = deserialize<u16>(mutated);
      (void)decompress(blob2);
    } catch (const std::exception&) {
      // expected for most forgeries
    }
  }
}

TEST(FuzzCodebook, ParallelBuilderOnAdversarialHistograms) {
  // Degenerate shapes the melding rounds must survive: all-equal, strictly
  // doubling, single-heavy, two-valued, saw-tooth.
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 1 + rng.below(300);
    std::vector<u64> freq(n);
    switch (trial % 5) {
      case 0:
        for (auto& f : freq) f = 7;
        break;
      case 1: {
        u64 v = 1;
        for (auto& f : freq) {
          f = v;
          v = std::min<u64>(v * 2, u64{1} << 50);
        }
        break;
      }
      case 2:
        for (auto& f : freq) f = 1;
        freq[rng.below(n)] = u64{1} << 40;
        break;
      case 3:
        for (std::size_t i = 0; i < n; ++i) freq[i] = i % 2 ? 1 : 1000;
        break;
      default:
        for (std::size_t i = 0; i < n; ++i) freq[i] = 1 + (i * 37) % 100;
        break;
    }
    SeqExec exec;
    const Codebook cb = build_codebook_parallel(exec, freq);
    ASSERT_EQ(cb.validate(), "") << "trial " << trial << " n=" << n;
    // Optimality vs the serial reference.
    const auto lens = build_lengths_twoqueue(freq);
    u64 par = 0, ser = 0;
    for (std::size_t i = 0; i < n; ++i) {
      par += freq[i] * cb.cw[i].len;
      ser += freq[i] * lens[i];
    }
    ASSERT_EQ(par, ser) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Lossy (PHL2) container fuzzing: random damage, checksum-fixing forgeries
// of the RLE1 optional field, forged outlier tables, and hostile float
// inputs. Contract everywhere: throw a typed std::exception or decode
// defensively — never read out of bounds.

/// A field whose fused container carries both RLE runs and residual
/// symbols: a noisy prefix over a constant bulk.
std::vector<float> rle_heavy_field(data::Dims dims, Xoshiro256& rng) {
  std::vector<float> field(dims.total(), 2.5f);
  const std::size_t noisy = std::min<std::size_t>(field.size() / 4, 2000);
  for (std::size_t i = 0; i < noisy; ++i) {
    field[i] = static_cast<float>(proptest::uniform(rng, -10.0, 10.0));
  }
  return field;
}

/// Offset of the "RLE1" tag inside a serialized container, or npos.
std::size_t find_rle_tag(std::span<const u8> bytes) {
  static constexpr u8 kTag[4] = {'R', 'L', 'E', '1'};
  const auto it = std::search(bytes.begin(), bytes.end(), std::begin(kTag),
                              std::end(kTag));
  return it == bytes.end()
             ? std::string::npos
             : static_cast<std::size_t>(it - bytes.begin());
}

class FuzzLossy : public ::testing::TestWithParam<int> {};

TEST_P(FuzzLossy, MutatedLossyContainersNeverCrash) {
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 263 + 7);
  const data::Dims dims{24, 24, 24};
  const auto field = rle_heavy_field(dims, rng);
  lossy::FusedConfig cfg;
  cfg.rel_error_bound = 1e-3;
  cfg.rle_min_run = 64;
  lossy::FusedReport rep;
  const auto bytes = lossy::compress_field_fused(field, dims, cfg, &rep);
  ASSERT_GE(rep.rle_runs, 1u);  // the damage must reach RLE metadata

  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = bytes;
    const u64 kind = rng.below(4);
    if (kind == 0) {
      mutated[rng.below(mutated.size())] ^= static_cast<u8>(1 + rng.below(255));
    } else if (kind == 1) {
      mutated.resize(rng.below(mutated.size()));
    } else if (kind == 2) {
      for (int k = 0; k < 16; ++k) {
        mutated[rng.below(mutated.size())] = static_cast<u8>(rng.below(256));
      }
    } else {
      mutated.insert(mutated.end(), rng.below(64), static_cast<u8>(0x55));
    }
    try {
      (void)lossy::decompress_field(mutated);
    } catch (const std::exception&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLossy, ::testing::Range(0, 6));

TEST_P(FuzzLossy, ForgedRleFieldWithValidChecksumNeverCrashes) {
  // Checksum-fixing forgeries aimed at the RLE1 payload: run symbol, run
  // count, positions and lengths reach rle_expand's validation with a
  // valid per-field digest; whatever passes must survive expansion and
  // reconstruction without OOB.
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 709 + 13);
  const data::Dims dims{24, 24, 24};
  const auto field = rle_heavy_field(dims, rng);
  lossy::FusedConfig cfg;
  cfg.rel_error_bound = 1e-3;
  cfg.rle_min_run = 64;
  const auto bytes = lossy::compress_field_fused(field, dims, cfg);

  const std::size_t tag_at = find_rle_tag(bytes);
  ASSERT_NE(tag_at, std::string::npos);
  // tag(4) | len(8) | payload(len) | digest(8)
  u64 payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + tag_at + 4, 8);
  const std::size_t payload_at = tag_at + 12;
  ASSERT_LE(payload_at + payload_len + 8, bytes.size());
  const auto fix_field = [&](std::vector<u8>& buf) {
    const u64 d = fnv1a(
        std::span<const u8>(buf.data() + payload_at, payload_len));
    std::memcpy(buf.data() + payload_at + payload_len, &d, sizeof(d));
  };

  // Payload: run_symbol u32 | orig_symbols u64 | n_runs u64 | pos[] | len[]
  const u64 u64_forgeries[] = {0,       1,            u64{1} << 32,
                               ~u64{0}, ~u64{0} - 30, ~u64{0} / 2};
  const u32 u32_forgeries[] = {0, 1, 512, 0x7FFFFFFFu, 0xFFFFFFFFu};
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = bytes;
    const u64 which = rng.below(5);
    if (which == 0) {  // run_symbol (0 = forged outlier-marker run)
      std::memcpy(mutated.data() + payload_at, &u32_forgeries[rng.below(5)],
                  4);
    } else if (which == 1) {  // orig_symbols
      std::memcpy(mutated.data() + payload_at + 4,
                  &u64_forgeries[rng.below(6)], 8);
    } else if (which == 2) {  // n_runs
      std::memcpy(mutated.data() + payload_at + 12,
                  &u64_forgeries[rng.below(6)], 8);
    } else if (which == 3 && payload_len >= 28) {  // pos[0]
      std::memcpy(mutated.data() + payload_at + 20,
                  &u64_forgeries[rng.below(6)], 8);
    } else if (payload_len >= 32) {  // len[last] (tail of the payload)
      std::memcpy(mutated.data() + payload_at + payload_len - 4,
                  &u32_forgeries[rng.below(5)], 4);
    }
    fix_field(mutated);
    try {
      (void)lossy::decompress_field(mutated);
    } catch (const std::exception&) {
      // expected for most forgeries
    }
  }

  // The specific forgery the decoder must always reject: a run of the
  // outlier marker (symbol 0) would desynchronize the outlier side
  // channel, so it fails typed even with a valid digest.
  auto forged = bytes;
  const u32 zero = 0;
  std::memcpy(forged.data() + payload_at, &zero, 4);
  fix_field(forged);
  EXPECT_THROW((void)lossy::decompress_field(forged), std::exception);
}

TEST_P(FuzzLossy, ForgedOutlierTablesNeverCrash) {
  // The PHL2 outlier table sits at a fixed offset (no digest guards it —
  // the embedded Huffman container's digests cover only the code stream),
  // so forged counts, indices and orderings hit the parse checks directly.
  Xoshiro256 rng(static_cast<u64>(GetParam()) * 811 + 3);
  const data::Dims dims{16, 16, 16};
  auto field = data::generate_cosmo_field(dims, 21);
  field[9] = 1e9f;  // guarantee at least one outlier entry
  field[4000] = -1e9f;
  lossy::FusedConfig cfg;
  cfg.abs_error_bound = 0.01;
  lossy::FusedReport rep;
  const auto bytes = lossy::compress_field_fused(field, dims, cfg, &rep);
  ASSERT_GE(rep.outliers, 2u);

  // PHL2 header: magic(4) dims(24) eb(8) nbins(4) sym_bytes(1) = 41, then
  // n_outliers u64 at 41 and {u32 idx, f32 val} pairs from 49.
  constexpr std::size_t kCountAt = 41;
  constexpr std::size_t kTableAt = 49;
  const u64 u64_forgeries[] = {0, 1, dims.nx * dims.ny * dims.nz + 1,
                               u64{1} << 32, ~u64{0}};
  const u32 u32_forgeries[] = {0, 9, 4095, 4096, 0xFFFFFFFFu};
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = bytes;
    const u64 which = rng.below(3);
    if (which == 0) {  // outlier count
      std::memcpy(mutated.data() + kCountAt, &u64_forgeries[rng.below(5)], 8);
    } else if (which == 1) {  // first outlier index (ordering/range checks)
      std::memcpy(mutated.data() + kTableAt, &u32_forgeries[rng.below(5)], 4);
    } else {  // random damage inside the table
      mutated[kTableAt + rng.below(rep.outliers * 8)] ^=
          static_cast<u8>(1 + rng.below(255));
    }
    try {
      (void)lossy::decompress_field(mutated);
    } catch (const std::exception&) {
      // expected for most forgeries
    }
  }

  // A count past the field size must fail typed, never allocate/scan.
  auto forged = bytes;
  const u64 huge = ~u64{0};
  std::memcpy(forged.data() + kCountAt, &huge, 8);
  EXPECT_THROW((void)lossy::decompress_field(forged), std::exception);
}

TEST(FuzzLossy, HostileFloatsNeverCrashTheFusedQuantizer) {
  // NaN/Inf/-0.0/denormal soup is a *valid* input: the fused quantizer
  // must compress it (non-finites as exact outliers) and the round trip
  // must hold the bound on the finite elements. llround never sees a
  // non-finite or an out-of-range quotient.
  namespace pt = proptest;
  const data::Dims dims{12, 12, 12};
  Xoshiro256 rng(31337);

  std::vector<std::vector<float>> fields;
  fields.push_back(pt::make_field(pt::FieldKind::kSpiky, dims, 1));
  fields.push_back(pt::make_field(pt::FieldKind::kDenormal, dims, 2));
  fields.emplace_back(dims.total(),
                      std::numeric_limits<float>::quiet_NaN());
  fields.emplace_back(dims.total(), std::numeric_limits<float>::infinity());
  {
    std::vector<float> mixed(dims.total());
    for (auto& v : mixed) {
      const u64 pick = rng.below(5);
      v = pick == 0   ? std::numeric_limits<float>::quiet_NaN()
          : pick == 1 ? std::numeric_limits<float>::infinity()
          : pick == 2 ? -std::numeric_limits<float>::infinity()
          : pick == 3 ? -0.0f
                      : static_cast<float>(pt::uniform(rng, -1.0, 1.0));
    }
    fields.push_back(std::move(mixed));
  }

  for (const auto& field : fields) {
    for (const u32 nbins : {256u, 1024u}) {
      lossy::FusedConfig cfg;
      cfg.rel_error_bound = 1e-3;
      cfg.nbins = nbins;
      lossy::FusedReport rep;
      const auto bytes =
          lossy::compress_field_fused(field, dims, cfg, &rep);
      const auto back = lossy::decompress_field(bytes);
      ASSERT_EQ(back.values.size(), field.size());
      // Finite values in bound; non-finites back as the same class.
      EXPECT_LE(pt::max_abs_error(field, back.values),
                rep.error_bound * 1.0001)
          << "nbins=" << nbins;
    }
  }
}

TEST(FuzzDecode, RandomPayloadBitFlipsThrowOrMisdecode) {
  Xoshiro256 rng(404);
  std::size_t nbins = 0;
  const auto input = random_stream(rng, 30000, nbins);
  const auto freq = histogram_serial<u16>(input, nbins);
  const Codebook cb = build_codebook_serial(freq);
  auto enc = encode_serial<u16>(input, cb, 1024);
  for (int trial = 0; trial < 60 && !enc.payload.empty(); ++trial) {
    auto broken = enc;
    broken.payload[rng.below(broken.payload.size())] ^=
        word_t{1} << rng.below(32);
    try {
      const auto out = decode_stream<u16>(broken, cb, 1);
      EXPECT_EQ(out.size(), input.size());  // sized output even if wrong
    } catch (const std::exception&) {
      // acceptable: the flip desynchronized a chunk past its bit budget
    }
  }
}

// --- Adaptive codebook lifecycle races (svc/codebook_manager.hpp). -----------
// Seeded sweeps over the three race windows the drift tests can't pin
// one-shot: stop() landing mid-swap, a covers() hard miss resyncing a
// bucket while its rebuild is in flight, and a forged fingerprint
// colliding a fresh-looking book with traffic it cannot encode.

namespace fuzz_adaptive {

svc::AdaptivePolicy eager_policy() {
  svc::AdaptivePolicy p;
  p.enabled = true;
  p.window_decay = 0.5;
  p.min_window_symbols = 256;
  p.divergence_high_bits = 0.02;
  p.divergence_low_bits = 0.01;
  p.max_rebuilds_per_period = 0;  // unlimited: the fuzz wants max traffic
  return p;
}

PipelineConfig bins64_config() {
  PipelineConfig cfg;
  cfg.nbins = 64;
  cfg.codebook = CodebookKind::kSerialTree;
  return cfg;
}

}  // namespace fuzz_adaptive

TEST(FuzzAdaptive, StopRacingInflightRebuildAlwaysBalances) {
  // Trigger a rebuild, then stop()/destroy at a seed-chosen point — with
  // or without an intervening quiesce(). Whatever the interleaving, every
  // started rebuild must resolve as exactly one outcome and destruction
  // must not hang or touch freed state (TSan/ASan runs cover this test).
  const PipelineConfig cfg = fuzz_adaptive::bins64_config();
  proptest::DriftSpec spec;
  const proptest::DriftSource src(spec, proptest::case_seed(0xfa2e0001ull, 0));
  const std::vector<u64> h0 = src.histogram(0);
  const std::vector<u64> h1 = src.histogram(spec.batches - 1);
  const svc::Fingerprint fp =
      svc::fingerprint_histogram(h0, svc::cache_seed(cfg));
  for (u64 trial = 0; trial < 24; ++trial) {
    Xoshiro256 rng(proptest::case_seed(0xfa2e1000ull, trial));
    svc::CodebookCache cache;
    WorkStealExecutor pool(2);
    util::VirtualClock vc;
    svc::CodebookManager::Counters c;
    {
      svc::CodebookManager mgr(fuzz_adaptive::eager_policy(), cache, pool, vc);
      const auto book = std::make_shared<const Codebook>(
          build_codebook(h0, cfg));
      cache.insert(fp, book);
      mgr.observe(fp, h0, book, cfg, false);
      mgr.observe(fp, h1, book, cfg, true);  // divergence >> high: triggers
      if (rng.below(2)) mgr.quiesce();       // else: stop races the rebuild
      mgr.stop();
      if (rng.below(2)) mgr.quiesce();
      // Post-stop observes are no-ops, not crashes.
      mgr.observe(fp, h1, book, cfg, true);
      mgr.stop();  // idempotent
      mgr.quiesce();
      c = mgr.counters();
    }  // dtor: stop + quiesce again
    EXPECT_EQ(c.rebuilds_started, 1u);
    EXPECT_EQ(c.rebuilds_started,
              c.rebuilds_applied + c.rebuilds_superseded +
                  c.rebuilds_cancelled + c.rebuilds_failed);
  }
}

TEST(FuzzAdaptive, HardMissResyncRacingRebuildKeepsTheFresherBook) {
  // While a rebuild for bucket fp is in flight, a covers()-style hard
  // miss installs its own fresh book and resyncs the bucket (generation
  // bump). Depending on scheduling the rebuild lands first (applied) or
  // comes home stale (superseded) — both are sanctioned; what may never
  // happen is the race losing the bucket's coverage of recent traffic.
  const PipelineConfig cfg = fuzz_adaptive::bins64_config();
  for (u64 trial = 0; trial < 24; ++trial) {
    proptest::DriftSpec spec;
    const proptest::DriftSource src(spec,
                                    proptest::case_seed(0xfa2e2000ull, trial));
    const std::vector<u64> h0 = src.histogram(0);
    const std::vector<u64> h1 = src.histogram(spec.batches - 1);
    const svc::Fingerprint fp =
        svc::fingerprint_histogram(h0, svc::cache_seed(cfg));
    svc::CodebookCache cache;
    WorkStealExecutor pool(2);
    util::VirtualClock vc;
    svc::CodebookManager mgr(fuzz_adaptive::eager_policy(), cache, pool, vc);

    const auto book0 =
        std::make_shared<const Codebook>(build_codebook(h0, cfg));
    cache.insert(fp, book0);
    mgr.observe(fp, h0, book0, cfg, false);
    mgr.observe(fp, h1, book0, cfg, true);  // rebuild in flight
    // The racing hard miss: a fresh build for the same bucket goes in
    // through the same insert path the batcher uses.
    const auto book1 =
        std::make_shared<const Codebook>(build_codebook(h1, cfg));
    cache.insert(fp, book1);
    mgr.observe(fp, h1, book1, cfg, false);
    mgr.quiesce();

    const auto c = mgr.counters();
    EXPECT_EQ(c.rebuilds_started, 1u);
    EXPECT_EQ(c.rebuilds_applied + c.rebuilds_superseded, 1u)
        << "a faultless race must resolve applied or superseded";
    EXPECT_EQ(c.rebuilds_failed, 0u);
    const auto cached = cache.find(fp);
    ASSERT_NE(cached, nullptr);
    EXPECT_TRUE(svc::CodebookCache::covers(*cached, h1));
  }
}

TEST(FuzzAdaptive, ForgedFingerprintCollisionNeverDecodesWrong) {
  // A forged (or stale-across-alphabet) cache entry colliding with live
  // traffic it cannot encode must always be caught by the covers() guard:
  // the request builds fresh, round-trips exactly, and the adaptive
  // manager resyncs the bucket rather than estimating against the
  // imposter. Randomize which symbols the imposter is missing.
  const PipelineConfig cfg = fuzz_adaptive::bins64_config();
  for (u64 trial = 0; trial < 12; ++trial) {
    Xoshiro256 rng(proptest::case_seed(0xfa2e3000ull, trial));
    util::VirtualClock vc;
    vc.auto_advance_every(1, util::Clock::dur(20e-6));
    svc::ServiceConfig sc;
    sc.workers = 2;
    sc.batch_window_seconds = 0;
    sc.adaptive = fuzz_adaptive::eager_policy();
    sc.clock = &vc;
    svc::CompressionService<u16> service(sc);

    // Live traffic over the full 64-bin support.
    proptest::DriftSpec spec;
    spec.log2_batch_symbols = 11;
    const proptest::DriftSource src(spec,
                                    proptest::case_seed(0xfa2e4000ull, trial));
    const std::vector<u16> request = src.batch<u16>(0);
    const auto freq = histogram_serial<u16>(request, cfg.nbins);
    const svc::Fingerprint fp =
        svc::fingerprint_histogram(freq, svc::cache_seed(cfg));

    // The imposter covers a random strict subset of the support.
    std::vector<u64> forged(cfg.nbins, 0);
    for (std::size_t i = 0; i < forged.size(); ++i) {
      if (rng.below(3) != 0) forged[i] = 1 + rng.below(100);
    }
    forged[rng.below(forged.size())] = 0;  // at least one hole
    bool any = false, hole = false;
    for (std::size_t i = 0; i < forged.size(); ++i) {
      any |= forged[i] > 0;
      hole |= forged[i] == 0 && freq[i] > 0;
    }
    if (!any || !hole) continue;  // degenerate draw: nothing to prove
    service.cache().insert(
        fp, std::make_shared<const Codebook>(build_codebook(forged, cfg)));

    const auto res =
        service.submit(std::span<const u16>(request), cfg).get();
    EXPECT_FALSE(res.cache_hit) << "the imposter book was used for encoding";
    EXPECT_EQ(svc::decompress(res), request);

    // The guard reject reached the manager as a resync, not an estimate
    // against the imposter: no rebuild can have started off it.
    ASSERT_NE(service.adaptive(), nullptr);
    service.adaptive()->quiesce();
    const auto c = service.adaptive()->counters();
    EXPECT_EQ(c.rebuilds_started, 0u);
    EXPECT_GT(c.observations, 0u);
  }
}

}  // namespace
}  // namespace parhuff
