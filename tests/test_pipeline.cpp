// End-to-end pipeline: every histogram x codebook x encoder combination
// round-trips, reports sane stage metrics, and agrees on compressed size
// where bit-identity is guaranteed.
#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.hpp"
#include "data/datasets.hpp"
#include "data/quant.hpp"
#include "data/textgen.hpp"

namespace parhuff {
namespace {

class PipelineMatrix
    : public ::testing::TestWithParam<
          std::tuple<HistogramKind, CodebookKind, EncoderKind>> {};

TEST_P(PipelineMatrix, RoundTripsByteData) {
  const auto [h, c, e] = GetParam();
  const auto input = data::generate_text(150000, 99);
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.histogram = h;
  cfg.codebook = c;
  cfg.encoder = e;
  PipelineReport rep;
  const auto blob = compress<u8>(input, cfg, &rep);
  EXPECT_EQ(blob.codebook.validate(), "");
  EXPECT_EQ(decompress(blob, 2), input);
  EXPECT_GT(rep.avg_bits, 1.0);
  EXPECT_LT(rep.avg_bits, 8.0);
  EXPECT_GE(rep.avg_bits, rep.entropy_bits - 0.01);
  EXPECT_GT(rep.compression_ratio(), 1.0);
  EXPECT_GT(rep.total_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineMatrix,
    ::testing::Combine(
        ::testing::Values(HistogramKind::kSerial, HistogramKind::kOpenMP,
                          HistogramKind::kSimt),
        ::testing::Values(CodebookKind::kSerialTree,
                          CodebookKind::kParallelSimt,
                          CodebookKind::kParallelOmp),
        ::testing::Values(EncoderKind::kSerial, EncoderKind::kOpenMP,
                          EncoderKind::kCoarseSimt,
                          EncoderKind::kPrefixSumSimt,
                          EncoderKind::kReduceShuffleSimt,
                          EncoderKind::kAdaptiveSimt)));

TEST(Pipeline, MultiByteQuantCodes) {
  const auto input = data::generate_nyx_quant(200000, 5);
  PipelineConfig cfg;
  cfg.nbins = 1024;
  PipelineReport rep;
  const auto blob = compress<u16>(input, cfg, &rep);
  EXPECT_EQ(decompress(blob, 2), input);
  // Nyx-Quant profile: very low average bits, high ratio, r decided >= 3.
  EXPECT_LT(rep.avg_bits, 2.5);
  EXPECT_GE(rep.reduce_factor, 2u);
  EXPECT_GT(rep.compression_ratio(), 4.0);
}

TEST(Pipeline, ReduceFactorOverrideHonored) {
  const auto input = data::generate_nyx_quant(50000, 6);
  PipelineConfig cfg;
  cfg.nbins = 1024;
  cfg.reduce_factor = 2;
  PipelineReport rep;
  (void)compress<u16>(input, cfg, &rep);
  EXPECT_EQ(rep.reduce_factor, 2u);
}

TEST(Pipeline, SimtStagesProduceTallies) {
  const auto input = data::generate_text(100000, 1);
  PipelineConfig cfg;
  cfg.nbins = 256;
  PipelineReport rep;
  (void)compress<u8>(input, cfg, &rep);
  EXPECT_GT(rep.hist_tally.global_read_bytes, 0u);
  EXPECT_GT(rep.codebook_tally.grid_syncs, 0u);
  EXPECT_GT(rep.encode_tally.global_read_bytes, 0u);
  EXPECT_GT(rep.encode_tally.shared_bytes, 0u);
}

TEST(Pipeline, DecoderKindsAgree) {
  const auto input = data::generate_nyx_quant(120000, 77);
  PipelineConfig cfg;
  cfg.nbins = 1024;
  const auto blob = compress<u16>(input, cfg);
  simt::MemTally t1, t2;
  EXPECT_EQ(decompress_with(blob, DecoderKind::kHost), input);
  EXPECT_EQ(decompress_with(blob, DecoderKind::kSimt, &t1), input);
  EXPECT_EQ(decompress_with(blob, DecoderKind::kSelfSync, &t2), input);
  EXPECT_GT(t1.global_read_sectors, 0u);
  EXPECT_GT(t2.scalar_ops, 0u);
}

TEST(Pipeline, TinyInputs) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{1023}, std::size_t{1025}}) {
    std::vector<u8> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<u8>(i % 7);
    PipelineConfig cfg;
    cfg.nbins = 256;
    const auto blob = compress<u8>(input, cfg);
    EXPECT_EQ(decompress(blob, 1), input) << "n=" << n;
  }
}

TEST(Pipeline, CompressionRatioTracksEntropy) {
  // ~1-bit data compresses ~8x harder than ~8-bit data.
  const auto low = data::generate_nyx_quant(100000, 7);
  std::vector<u8> high(100000);
  for (std::size_t i = 0; i < high.size(); ++i) {
    high[i] = static_cast<u8>((i * 2654435761u) >> 24);  // near-uniform
  }
  PipelineConfig cfg16;
  cfg16.nbins = 1024;
  PipelineReport rl, rh;
  (void)compress<u16>(low, cfg16, &rl);
  PipelineConfig cfg8;
  cfg8.nbins = 256;
  (void)compress<u8>(high, cfg8, &rh);
  EXPECT_GT(rl.compression_ratio(), 6.0);
  EXPECT_LT(rh.compression_ratio(), 1.3);
}

}  // namespace
}  // namespace parhuff
