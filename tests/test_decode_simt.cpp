// SIMT chunk-parallel decoder and the block-level cooperative primitives.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/decode.hpp"
#include "core/decode_simt.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"
#include "data/textgen.hpp"
#include "simt/block_ops.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

TEST(DecodeSimt, MatchesHostDecoderOnBytes) {
  const auto input = data::generate_text(300000, 1);
  const auto freq = histogram_serial<u8>(input, 256);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_serial<u8>(input, cb, 1024);
  simt::MemTally tally;
  EXPECT_EQ(decode_simt<u8>(enc, cb, &tally), input);
  EXPECT_GT(tally.global_read_sectors, 0u);
  EXPECT_GT(tally.shared_bytes, 0u);
}

TEST(DecodeSimt, HandlesOverflowGroups) {
  // Force heavy breaking with an oversized fixed reduce factor.
  const auto input = data::generate_nyx_quant(200000, 2);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  ReduceShuffleStats st;
  const auto enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{10, 6}, nullptr, &st);
  ASSERT_GT(st.breaking_groups, 0u);
  EXPECT_EQ(decode_simt<u16>(enc, cb, nullptr), input);
}

TEST(DecodeSimt, HandlesAdaptivePerChunkFactors) {
  Xoshiro256 rng(5);
  std::vector<u16> input(150000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<u16>((i / 10000) % 2 ? rng.below(1024)
                                                : rng.below(2));
  }
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_adaptive_simt<u16, 32>(input, cb, {});
  EXPECT_EQ(decode_simt<u16>(enc, cb, nullptr), input);
}

TEST(DecodeSimt, EmptyStream) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  EncodedStream s;
  s.chunk_symbols = 1024;
  EXPECT_TRUE(decode_simt<u8>(s, cb, nullptr).empty());
}

class DecodeSimtChunks : public ::testing::TestWithParam<u32> {};

TEST_P(DecodeSimtChunks, AllChunkSizes) {
  const u32 mag = GetParam();
  const auto input = data::generate_nyx_quant(77777, 3);
  const auto freq = histogram_serial<u16>(input, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_reduceshuffle_simt<u16>(
      input, cb, ReduceShuffleConfig{mag, std::min(mag - 1, 3u)}, nullptr,
      nullptr);
  EXPECT_EQ(decode_simt<u16>(enc, cb, nullptr), input);
}

INSTANTIATE_TEST_SUITE_P(Mags, DecodeSimtChunks,
                         ::testing::Values(4u, 8u, 10u, 12u));

// --- Block-level primitives. -------------------------------------------------

TEST(BlockOps, ReduceAdd) {
  simt::launch(4, 64, nullptr, [&](simt::BlockCtx& blk) {
    auto sh = blk.shared_array<u64>(100);
    std::iota(sh.begin(), sh.end(), 1);
    EXPECT_EQ(simt::block_reduce_add(blk, std::span<const u64>(sh)),
              u64{100} * 101 / 2);
  });
}

TEST(BlockOps, ReduceMax) {
  simt::launch(1, 32, nullptr, [&](simt::BlockCtx& blk) {
    auto sh = blk.shared_array<int>(9);
    const int vals[] = {3, 1, 4, 1, 5, 9, 2, 6, 5};
    std::copy(std::begin(vals), std::end(vals), sh.begin());
    EXPECT_EQ(simt::block_reduce_max(blk, std::span<const int>(sh)), 9);
  });
}

TEST(BlockOps, ScanExclusiveAndInclusive) {
  simt::launch(1, 32, nullptr, [&](simt::BlockCtx& blk) {
    auto a = blk.shared_array<u32>(5);
    const u32 vals[] = {2, 3, 5, 7, 11};
    std::copy(std::begin(vals), std::end(vals), a.begin());
    EXPECT_EQ(simt::block_scan_exclusive(blk, std::span<u32>(a)), 28u);
    EXPECT_EQ(a[0], 0u);
    EXPECT_EQ(a[4], 17u);

    auto b = blk.shared_array<u32>(5);
    std::copy(std::begin(vals), std::end(vals), b.begin());
    EXPECT_EQ(simt::block_scan_inclusive(blk, std::span<u32>(b)), 28u);
    EXPECT_EQ(b[0], 2u);
    EXPECT_EQ(b[4], 28u);
  });
}

TEST(BlockOps, TallyRecordsBarriers) {
  simt::MemTally tally;
  simt::launch(1, 32, &tally, [&](simt::BlockCtx& blk) {
    auto a = blk.shared_array<u32>(64);
    std::fill(a.begin(), a.end(), 1);
    (void)simt::block_scan_exclusive(blk, std::span<u32>(a));
  });
  EXPECT_GT(tally.block_syncs, 0u);
  EXPECT_GT(tally.shared_bytes, 0u);
}

}  // namespace
}  // namespace parhuff
