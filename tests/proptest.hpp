#pragma once
// Property-based testing harness for the lossy stack (and byte-stream
// round trips generally). Deliberately tiny — a seeded generator, a
// library of adversarial float-field families, and a runner with
// halving-shrink — because the properties under test are simple
// ("|x - x'| <= eb elementwise", "decode(encode(x)) == x") and the value
// is in the *inputs*: hundreds of seeded cases across field families that
// each break a different assumption (denormals underflow bin widths,
// turbulence defeats the Lorenzo stencil, constants starve the histogram,
// NaN/Inf must never reach llround).
//
// Every case is reproducible from (family, case index): the runner derives
// the case seed as fnv1a-style mix of a fixed harness seed, so a CI
// failure names the exact field that broke and `--gtest_filter` +
// the logged seed replays it locally. On failure the runner shrinks by
// halving the largest dimension while the property still fails, then
// reports the minimal failing shape.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "data/quant.hpp"
#include "util/rng.hpp"

namespace parhuff::proptest {

/// Fixed harness seed: changing it reshuffles every generated case, so it
/// only moves deliberately.
inline constexpr std::uint64_t kHarnessSeed = 0x9e3779b97f4a7c15ull;

/// Derive the deterministic seed of one case from its family and index.
[[nodiscard]] inline std::uint64_t case_seed(std::uint64_t family_tag,
                                             std::uint64_t index) {
  std::uint64_t h = kHarnessSeed;
  h ^= family_tag;
  h *= 0x100000001b3ull;
  h ^= index;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  return h;
}

/// Uniform double in [lo, hi).
[[nodiscard]] inline double uniform(Xoshiro256& rng, double lo, double hi) {
  const double u =
      static_cast<double>(rng.next() >> 11) * (1.0 / 9007199254740992.0);
  return lo + u * (hi - lo);
}

// ---------------------------------------------------------------------------
// Float-field families. Each produces dims.total() samples from a seed;
// together they cover the quantizer's failure modes.

enum class FieldKind {
  kSmooth,        ///< separable trig field: Lorenzo's best case
  kTurbulent,     ///< smooth base + heavy noise: prediction mostly misses
  kConstant,      ///< one value everywhere: RLE's best case, histogram's worst
  kDenormal,      ///< values straddling FLT_MIN: bin widths can underflow
  kSpiky,         ///< smooth with injected outlier spikes and non-finites
};

[[nodiscard]] inline const char* field_kind_name(FieldKind k) {
  switch (k) {
    case FieldKind::kSmooth: return "smooth";
    case FieldKind::kTurbulent: return "turbulent";
    case FieldKind::kConstant: return "constant";
    case FieldKind::kDenormal: return "denormal";
    case FieldKind::kSpiky: return "spiky";
  }
  return "?";
}

[[nodiscard]] inline std::vector<float> make_field(FieldKind kind,
                                                   data::Dims dims,
                                                   std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> f(dims.total());
  const double fx = uniform(rng, 0.02, 0.3);
  const double fy = uniform(rng, 0.02, 0.3);
  const double fz = uniform(rng, 0.02, 0.3);
  const double amp = uniform(rng, 0.5, 50.0);
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++i) {
        const double base = amp * (std::sin(static_cast<double>(x) * fx) *
                                       std::cos(static_cast<double>(y) * fy) +
                                   std::sin(static_cast<double>(z) * fz));
        switch (kind) {
          case FieldKind::kSmooth:
            f[i] = static_cast<float>(base);
            break;
          case FieldKind::kTurbulent:
            f[i] = static_cast<float>(base +
                                      amp * uniform(rng, -0.9, 0.9));
            break;
          case FieldKind::kConstant:
            f[i] = static_cast<float>(amp);
            break;
          case FieldKind::kDenormal: {
            // Straddle the subnormal range: magnitudes around and below
            // FLT_MIN, signs mixed, exact zeros and -0.0 sprinkled in.
            const double mag = std::ldexp(uniform(rng, 0.5, 2.0),
                                          -120 - static_cast<int>(
                                                     rng.below(30)));
            const double s = rng.below(2) == 0 ? mag : -mag;
            const std::uint64_t pick = rng.below(16);
            f[i] = pick == 0 ? 0.0f : pick == 1 ? -0.0f
                                     : static_cast<float>(s);
            break;
          }
          case FieldKind::kSpiky: {
            f[i] = static_cast<float>(base);
            const std::uint64_t pick = rng.below(257);
            if (pick == 0) f[i] = static_cast<float>(amp * 1e8);
            if (pick == 1) f[i] = std::numeric_limits<float>::quiet_NaN();
            if (pick == 2) f[i] = std::numeric_limits<float>::infinity();
            if (pick == 3) f[i] = -std::numeric_limits<float>::infinity();
            if (pick == 4) f[i] = -0.0f;
            break;
          }
        }
      }
    }
  }
  return f;
}

/// Random small dims mixing 1-D, 2-D and 3-D shapes. Bounded so a full
/// suite of hundreds of cases stays fast.
[[nodiscard]] inline data::Dims make_dims(Xoshiro256& rng) {
  const std::uint64_t shape = rng.below(3);
  if (shape == 0) {  // 1-D series
    return data::Dims{2 + rng.below(2000), 1, 1};
  }
  if (shape == 1) {  // 2-D slice
    return data::Dims{2 + rng.below(48), 2 + rng.below(48), 1};
  }
  return data::Dims{2 + rng.below(18), 2 + rng.below(18), 2 + rng.below(18)};
}

/// Random byte buffer (for lossless byte-stream round-trip properties).
[[nodiscard]] inline std::vector<std::uint8_t> make_bytes(Xoshiro256& rng,
                                                          std::size_t max_len) {
  std::vector<std::uint8_t> b(rng.below(max_len + 1));
  // Mix of uniform noise and runs, so both histogram shapes appear.
  std::size_t i = 0;
  while (i < b.size()) {
    if (rng.below(4) == 0) {
      const std::uint8_t v = static_cast<std::uint8_t>(rng.below(256));
      const std::size_t run = std::min<std::size_t>(
          b.size() - i, 1 + rng.below(64));
      std::fill_n(b.begin() + static_cast<std::ptrdiff_t>(i), run, v);
      i += run;
    } else {
      b[i++] = static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Drifting-source families (the adaptive codebook lifecycle's harness,
// tests/test_adaptive_drift.cpp). A DriftSource emits a deterministic
// sequence of batches whose symbol distribution moves over time along one
// of three schedules:
//
//   kGradual   — linear interpolation between two histograms over the run
//   kAbrupt    — regime switch: histogram A for the first half, B after
//   kPeriodic  — sinusoidal mixture of A and B with a fixed period
//
// The construction is band-aware with respect to the codebook cache's
// fingerprint (svc/fingerprint.hpp): every batch totals exactly
// 2^log2_batch_symbols symbols (a ballast bin absorbs rounding), so a
// bin's fingerprint band is a pure function of its count, and drifting
// bins oscillate between complementary multipliers inside one power-of-2
// band. With the default swing the whole run therefore keeps ONE
// fingerprint — the drift is invisible to the cache (a pure soft miss),
// which is exactly the blind spot the adaptive manager exists to cover.
// Raising swing above ~1.0 pushes bins across band boundaries and mixes
// hard misses in. Histograms are fully deterministic given (spec, seed);
// the only sampled randomness is symbol order within a batch.

enum class DriftKind {
  kGradual,   ///< endpoints interpolated linearly across the run
  kAbrupt,    ///< regime switch at the half-way batch
  kPeriodic,  ///< sinusoidal mixture with spec.period
};

[[nodiscard]] inline const char* drift_kind_name(DriftKind k) {
  switch (k) {
    case DriftKind::kGradual: return "gradual";
    case DriftKind::kAbrupt: return "abrupt";
    case DriftKind::kPeriodic: return "periodic";
  }
  return "?";
}

struct DriftSpec {
  DriftKind kind = DriftKind::kGradual;
  std::size_t nbins = 64;  ///< alphabet size; >= 8
  std::size_t batches = 60;
  /// Every batch holds exactly 2^this symbols (the ballast bin absorbs
  /// per-bin rounding, keeping fingerprint bands a function of counts).
  std::size_t log2_batch_symbols = 13;
  /// Per-bin multiplier travel: a drifting bin's count swings between
  /// scale*(1.5 - swing/2) and scale*(1.5 + swing/2). Up to ~0.76 the
  /// range [1.12, 1.88]*2^m stays inside one fingerprint band; larger
  /// swings cross band boundaries and produce cache hard misses too.
  double swing = 0.76;
  std::size_t period = 12;  ///< kPeriodic only
};

class DriftSource {
 public:
  DriftSource(DriftSpec spec, std::uint64_t seed)
      : spec_(spec), seed_(seed), fixed_(spec.nbins, 0) {
    const std::size_t total = std::size_t{1} << spec_.log2_batch_symbols;
    // Role assignment: a seeded permutation spreads ballast / fixed /
    // paired roles across bin indices so cases differ structurally.
    Xoshiro256 rng(seed);
    std::vector<std::size_t> order(spec_.nbins);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    ballast_bin_ = order[0];

    // Pair scales: powers of two (2^m * jitter with jitter in [0.95,
    // 1.04], so the swung range stays inside the (2^m, 2^{m+1}) band),
    // geometric down the pair list, floored so rounding noise stays well
    // under the band margin. Pairs consume at most ~60% of the batch;
    // the rest is ballast + fixed bins.
    const std::size_t max_pairs = (spec_.nbins - 2) / 2;
    const double budget = 0.60 * static_cast<double>(total);
    double committed = 0;
    std::size_t next = 1;  // order[] cursor
    for (std::size_t k = 0; k < max_pairs; ++k) {
      // Geometric levels: 2^(q-6), halving every 6 pairs, floored at 32
      // (below that, llround noise nears the band margin).
      const long shift = static_cast<long>(spec_.log2_batch_symbols) - 6 -
                         static_cast<long>(k / 6);
      double scale =
          shift >= 5 ? static_cast<double>(std::uint64_t{1} << shift) : 32.0;
      scale *= uniform(rng, 0.95, 1.04);
      if (committed + 3.0 * scale > budget) break;
      committed += 3.0 * scale;
      Pair p;
      p.a = order[next++];
      p.b = order[next++];
      p.scale = scale;
      p.flip = rng.below(2) == 1;
      pairs_.push_back(p);
    }
    // Remaining bins hold small constant counts: present every batch
    // (support never changes) but never drifting.
    while (next < order.size()) fixed_[order[next++]] = 48;
  }

  [[nodiscard]] const DriftSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t batch_symbols() const {
    return std::size_t{1} << spec_.log2_batch_symbols;
  }

  /// Mixture coordinate of batch `t` in [0, 1] per the family schedule.
  [[nodiscard]] double lambda(std::size_t t) const {
    switch (spec_.kind) {
      case DriftKind::kGradual:
        return spec_.batches <= 1 ? 1.0
                                  : static_cast<double>(t) /
                                        static_cast<double>(spec_.batches - 1);
      case DriftKind::kAbrupt:
        return t < spec_.batches / 2 ? 0.0 : 1.0;
      case DriftKind::kPeriodic: {
        const double phase = 2.0 * 3.14159265358979323846 *
                             static_cast<double>(t) /
                             static_cast<double>(std::max<std::size_t>(
                                 spec_.period, 2));
        return 0.5 - 0.5 * std::cos(phase);
      }
    }
    return 0.0;
  }

  /// Batch `t`'s exact histogram: deterministic, sums to exactly
  /// 2^log2_batch_symbols.
  [[nodiscard]] std::vector<std::uint64_t> histogram(std::size_t t) const {
    const double u = lambda(t);
    std::vector<std::uint64_t> h = fixed_;
    std::uint64_t used = 0;
    for (const std::uint64_t c : h) used += c;
    for (const Pair& p : pairs_) {
      const double x = p.flip ? 1.0 - u : u;
      const double m0 = 1.5 + (x - 0.5) * spec_.swing;
      const double m1 = 3.0 - m0;
      h[p.a] = static_cast<std::uint64_t>(std::llround(p.scale * m0));
      h[p.b] = static_cast<std::uint64_t>(std::llround(p.scale * m1));
      used += h[p.a] + h[p.b];
    }
    const std::uint64_t total = std::uint64_t{1} << spec_.log2_batch_symbols;
    h[ballast_bin_] = total > used ? total - used : 1;  // absorbs rounding
    return h;
  }

  /// Batch `t` materialized as symbols (the histogram's counts in a
  /// seeded shuffle — the histogram drives everything; order is noise).
  template <typename Sym>
  [[nodiscard]] std::vector<Sym> batch(std::size_t t) const {
    const std::vector<std::uint64_t> h = histogram(t);
    std::vector<Sym> out;
    out.reserve(batch_symbols());
    for (std::size_t s = 0; s < h.size(); ++s) {
      out.insert(out.end(), static_cast<std::size_t>(h[s]),
                 static_cast<Sym>(s));
    }
    Xoshiro256 rng(case_seed(seed_, 0x7a5a5a5aull + t));
    for (std::size_t i = out.size(); i > 1; --i) {
      std::swap(out[i - 1], out[rng.below(i)]);
    }
    return out;
  }

 private:
  struct Pair {
    std::size_t a = 0, b = 0;
    double scale = 0;
    bool flip = false;  ///< which member rises as lambda rises
  };

  DriftSpec spec_;
  std::uint64_t seed_;
  std::vector<Pair> pairs_;
  std::vector<std::uint64_t> fixed_;  ///< constant counts; 0 = drifting
  std::size_t ballast_bin_ = 0;
};

struct DriftCaseId {
  DriftKind kind;
  std::uint64_t index;
  std::uint64_t seed;
  DriftSpec spec;
};

using DriftProperty = std::function<std::optional<std::string>(
    const DriftSource&, const DriftCaseId&)>;

/// Run `cases` seeded cases of one drift family against `prop`. On
/// failure, shrinks by halving the batch count while the property still
/// fails, then reports the minimal replayable case (family, case index,
/// seed, batches).
[[nodiscard]] inline std::optional<std::string> find_drift_failure(
    DriftKind kind, std::size_t cases, const DriftProperty& prop,
    DriftSpec base = {}) {
  base.kind = kind;
  for (std::uint64_t idx = 0; idx < cases; ++idx) {
    const std::uint64_t seed =
        case_seed(0xd21f7000ull + static_cast<std::uint64_t>(kind), idx);
    DriftSpec spec = base;
    DriftCaseId id{kind, idx, seed, spec};
    auto run = [&](const DriftSpec& s) {
      id.spec = s;
      return prop(DriftSource(s, seed), id);
    };
    std::optional<std::string> failure = run(spec);
    if (!failure) continue;

    // Shrink: halve the batch count while the failure reproduces.
    while (spec.batches >= 8) {
      DriftSpec smaller = spec;
      smaller.batches /= 2;
      const std::optional<std::string> again = run(smaller);
      if (!again) break;
      spec = smaller;
      failure = again;
    }
    std::ostringstream out;
    out << "drift property failed: family=" << drift_kind_name(kind)
        << " case=" << idx << " seed=0x" << std::hex << seed << std::dec
        << " batches=" << spec.batches << " nbins=" << spec.nbins
        << " swing=" << spec.swing << ": " << *failure;
    return out.str();
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Runner. A property receives the field and its shape and returns
// std::nullopt on success or a failure message. The runner shrinks a
// failing case by repeatedly halving its largest dimension while the
// property keeps failing, then reports the smallest failing shape — small
// enough to eyeball, still seeded for exact replay.

struct CaseId {
  FieldKind kind;
  std::uint64_t index;
  std::uint64_t seed;
  data::Dims dims;
};

using FieldProperty = std::function<std::optional<std::string>(
    const std::vector<float>&, data::Dims, const CaseId&)>;

/// Run `cases` seeded cases of one family against `prop`. Returns
/// std::nullopt when every case passes, else a report naming the (shrunk)
/// minimal failing case. Use check_fields() for the asserting wrapper.
[[nodiscard]] inline std::optional<std::string> find_field_failure(
    FieldKind kind, std::size_t cases, const FieldProperty& prop) {
  for (std::uint64_t idx = 0; idx < cases; ++idx) {
    const std::uint64_t seed =
        case_seed(static_cast<std::uint64_t>(kind) + 1, idx);
    Xoshiro256 rng(seed);
    data::Dims dims = make_dims(rng);
    CaseId id{kind, idx, seed, dims};
    auto run = [&](data::Dims d) {
      id.dims = d;
      return prop(make_field(kind, d, seed), d, id);
    };
    std::optional<std::string> failure = run(dims);
    if (!failure) continue;

    // Shrink: halve the largest dimension while the failure reproduces.
    for (;;) {
      data::Dims smaller = dims;
      std::size_t* largest = &smaller.nx;
      if (smaller.ny > *largest) largest = &smaller.ny;
      if (smaller.nz > *largest) largest = &smaller.nz;
      if (*largest < 4) break;
      *largest /= 2;
      const std::optional<std::string> again = run(smaller);
      if (!again) break;
      dims = smaller;
      failure = again;
    }
    std::ostringstream out;
    out << "property failed: family=" << field_kind_name(kind)
        << " case=" << idx << " seed=0x" << std::hex << seed << std::dec
        << " dims={" << dims.nx << "," << dims.ny << "," << dims.nz
        << "}: " << *failure;
    return out.str();
  }
  return std::nullopt;
}

/// Largest elementwise |a - b|; infinity on shape mismatch or when one
/// side is non-finite while the other is not (non-finites must round-trip
/// bit-for-bit as outliers, which the caller checks separately).
[[nodiscard]] inline double max_abs_error(const std::vector<float>& a,
                                          const std::vector<float>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i]) || !std::isfinite(b[i])) {
      // Bit-identical non-finites (NaN payload aside) are fine; anything
      // else is a reconstruction failure.
      const bool same_class =
          (std::isnan(a[i]) && std::isnan(b[i])) || (a[i] == b[i]);
      if (!same_class) return std::numeric_limits<double>::infinity();
      continue;
    }
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

}  // namespace parhuff::proptest
