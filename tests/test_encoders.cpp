// Cross-encoder equivalence: serial, OpenMP, coarse-SIMT and prefix-sum
// SIMT encoders must produce bit-identical chunked streams; all decode back
// to the input.
#include <gtest/gtest.h>

#include <vector>

#include "core/decode.hpp"
#include "core/encode_serial.hpp"
#include "core/encode_simt.hpp"
#include "core/tree.hpp"
#include "data/synth_hist.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

std::vector<u8> sample_data(const std::vector<u64>& freq, std::size_t n,
                            u64 seed) {
  // Draw symbols proportional to freq.
  std::vector<u32> cum;
  u64 total = 0;
  for (u64 f : freq) {
    total += f;
    cum.push_back(static_cast<u32>(total));
  }
  Xoshiro256 rng(seed);
  std::vector<u8> data(n);
  for (auto& d : data) {
    const u32 x = static_cast<u32>(rng.below(total));
    const auto it = std::upper_bound(cum.begin(), cum.end(), x);
    d = static_cast<u8>(it - cum.begin());
  }
  return data;
}

std::vector<u64> histogram_from(const std::vector<u8>& data) {
  std::vector<u64> h(256, 0);
  for (u8 b : data) ++h[b];
  return h;
}

class EncoderEquivalence : public ::testing::TestWithParam<u32> {};

TEST_P(EncoderEquivalence, AllBaselinesBitIdentical) {
  const u32 chunk = GetParam();
  const auto freq = data::zipf_histogram(200, 1.1, 1 << 20, 5);
  const auto input = sample_data(freq, 20000, 17);
  const auto hist = histogram_from(input);
  const Codebook cb = build_codebook_serial(hist);

  const EncodedStream a = encode_serial<u8>(input, cb, chunk);
  const EncodedStream b = encode_openmp<u8>(input, cb, chunk, 2);
  simt::MemTally t1, t2;
  const EncodedStream c = encode_coarse_simt<u8>(input, cb, chunk, &t1);
  const EncodedStream d = encode_prefixsum_simt<u8>(input, cb, chunk, &t2);

  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.payload, c.payload);
  EXPECT_EQ(a.payload, d.payload);
  EXPECT_EQ(a.chunk_bits, d.chunk_bits);
  EXPECT_GT(t1.global_read_sectors, 0u);
  EXPECT_GT(t2.global_atomics, 0u);

  const auto back = decode_stream<u8>(a, cb, 2);
  EXPECT_EQ(back, input);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, EncoderEquivalence,
                         ::testing::Values(64, 256, 1024, 4096, 100, 7777));

TEST(EncodeSerial, EmptyInput) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1});
  const EncodedStream s = encode_serial<u8>(std::vector<u8>{}, cb, 64);
  EXPECT_EQ(s.chunks(), 0u);
  EXPECT_EQ(decode_stream<u8>(s, cb, 1).size(), 0u);
}

TEST(EncodeSerial, ThrowsOnAbsentSymbol) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 1, 0});
  const std::vector<u8> bad = {0, 1, 2};
  EXPECT_THROW((void)encode_serial<u8>(bad, cb, 64), std::runtime_error);
}

TEST(EncodeSerial, SingleSymbolAlphabet) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1});
  const std::vector<u8> input(1000, 0);
  const EncodedStream s = encode_serial<u8>(input, cb, 128);
  EXPECT_EQ(s.total_payload_bits(), 1000u);
  EXPECT_EQ(decode_stream<u8>(s, cb, 1), input);
}

TEST(EncodeSerial, ChunkBitsMatchCodeLengths) {
  const Codebook cb = canonize_from_lengths(std::vector<u8>{1, 2, 2});
  const std::vector<u8> input = {0, 1, 2, 0};  // 1+2+2+1 = 6 bits
  const EncodedStream s = encode_serial<u8>(input, cb, 2);
  ASSERT_EQ(s.chunks(), 2u);
  EXPECT_EQ(s.chunk_bits[0], 3u);
  EXPECT_EQ(s.chunk_bits[1], 3u);
}

TEST(EncodeOpenmp, ThreadCountInvariance) {
  const auto freq = data::uniform_histogram(64, 500, 3);
  const auto input = sample_data(freq, 50000, 23);
  std::vector<u64> h(256, 0);
  for (u8 b : input) ++h[b];
  const Codebook cb = build_codebook_serial(h);
  const EncodedStream one = encode_openmp<u8>(input, cb, 512, 1);
  const EncodedStream two = encode_openmp<u8>(input, cb, 512, 2);
  const EncodedStream four = encode_openmp<u8>(input, cb, 512, 4);
  EXPECT_EQ(one.payload, two.payload);
  EXPECT_EQ(one.payload, four.payload);
}

}  // namespace
}  // namespace parhuff
